//! Mode-space assimilation: per-rung inference/forecast operators
//! projected into the rank-`r` POD observation basis, so the *whole*
//! streaming tick — identify, assimilate, forecast, classify — scales
//! with the POD rank instead of the observation dimension.
//!
//! PR 7 moved scenario identification into POD mode space and the
//! goal-oriented ladder ([`crate::goal`]) made forecasting rank-sized,
//! but the windowed assimilation panels still gathered `k = w·Nd` data
//! rows per session and paid `O(Nq·Nt × k)` per rung online. The source
//! paper (arXiv:2504.16344) gets its real-time guarantee precisely by
//! keeping every online operation independent of the full observation
//! dimension; this module closes that gap for assimilation.
//!
//! ## The reduced operators
//!
//! Let `U` be the `(Nd·Nt) × r` POD basis (orthonormal columns) and
//! `U_k` its leading `k` rows — the restriction every partially observed
//! stream projects through (`a_w = U_kᵀ d_k`, the same running
//! projection mode-space identification already maintains). `U_k` is
//! *not* orthonormal (restricting rows breaks column orthogonality), so
//! the reduced forecast operator absorbs the Gram pseudo-inverse
//! offline:
//!
//! ```text
//!   F̃_w = T_w · U_k (U_kᵀ U_k)⁺          (Nq·Nt × r),
//! ```
//!
//! built from one randomized SVD of `U_k` per rung
//! ([`tsunami_linalg::TruncatedSvd::pinv_transpose`]). Then
//! `F̃_w U_kᵀ = T_w P_w` with `P_w` the orthogonal projector onto
//! `range(U_k)`, and the *exactly computed* Frobenius residual
//!
//! ```text
//!   trunc_bound_w = ‖T_w − F̃_w U_kᵀ‖_F = ‖T_w (I − P_w)‖_F
//! ```
//!
//! certifies every online forecast against the dense windowed operator:
//! `‖q̂ − q‖₂ ≤ trunc_bound_w · ‖d_k‖₂` ([`ModeSpaceLadder::
//! mean_error_bound`]). Two exactness regimes fall out for free: a rung
//! whose restriction has full row rank (`rank(U_k) = k`, e.g. any rung
//! of a complete square basis) has `P_w = I` and a roundoff-level
//! bound, and data lying in the basis's span (`(I − P_w) d_k = 0`, e.g.
//! clean curves of a losslessly compressed bank) are forecast exactly
//! at *any* rank. The posterior std is data-independent and carried
//! over unchanged from `crate::window::rung_operator` — bitwise the
//! windowed forecaster's.
//!
//! With [`ModeSpaceOptions::inference`] set, the same Gram-absorbed
//! projection reduces the windowed *parameter inference* operator
//! `M_w = Gᵀ [K_w⁻¹ · ; 0]` to `M̃_w = M_w U_k (U_kᵀU_k)⁺`
//! (`Nm·Nt × r`), with its own exactly computed residual — no
//! leading-block Cholesky solve online at all.
//!
//! Per-rung SVD seeds are derived from the rung's window length exactly
//! as [`crate::goal::GoalLadder`] derives its compression seeds, so
//! rebuilds are bitwise reproducible across runs and shard counts.

use crate::phase1::Phase1;
use crate::phase2::Phase2;
use crate::phase3::Phase3;
use crate::phase4::ForecastBatch;
use crate::window::{self, infer_window_batch};
use rayon::prelude::*;
use std::time::Instant;
use tsunami_linalg::{randomized_svd, DMatrix, SvdOptions};

/// Offline knobs for [`ModeSpaceLadder::build`].
#[derive(Clone, Copy, Debug)]
pub struct ModeSpaceOptions {
    /// Also build the reduced parameter-inference operators `M̃_w`
    /// (needed for engine ticks with `infer: true`; the forecast-only
    /// service skips the extra offline solves).
    pub inference: bool,
    /// Relative cutoff for the basis restriction's singular values when
    /// absorbing the Gram pseudo-inverse: modes of `U_k` at or below
    /// `gram_rtol · σ₀` are dropped instead of inverted through.
    pub gram_rtol: f64,
    /// Randomized-SVD knobs for the per-rung basis factorization (the
    /// seed is varied per rung, as in [`crate::goal::GoalOptions`]).
    pub svd: SvdOptions,
}

impl Default for ModeSpaceOptions {
    fn default() -> Self {
        ModeSpaceOptions {
            inference: false,
            gram_rtol: 1e-10,
            svd: SvdOptions::default(),
        }
    }
}

/// One rung's reduced operators: everything the online tick applies to
/// the rank-`r` projection state.
pub struct ModeSpaceRung {
    /// Reduced data-to-QoI operator `F̃_w = T_w U_k (U_kᵀU_k)⁺`
    /// (`Nq·Nt × r`): one `r × B` GEMM forecasts a whole panel.
    pub q_map: DMatrix,
    /// Exactly computed residual `‖T_w − F̃_w U_kᵀ‖_F = ‖T_w(I−P_w)‖_F`.
    /// For any window data `d_k` the forecast-mean error against the
    /// dense windowed operator is bounded by `trunc_bound · ‖d_k‖₂`.
    pub trunc_bound: f64,
    /// Reduced parameter-inference operator `M̃_w` (`Nm·Nt × r`; only
    /// with [`ModeSpaceOptions::inference`]).
    pub m_map: Option<DMatrix>,
    /// Exactly computed residual `‖M_w − M̃_w U_kᵀ‖_F` (0 when `m_map`
    /// was not built).
    pub m_trunc_bound: f64,
}

/// The mode-space assimilation ladder: per-rung reduced operators over a
/// shared POD observation basis, plus the data-independent posterior
/// stds. Built offline once; the online tick is `r`-sized folds and
/// `r × B` GEMMs only (`AssimilateBackend::ModeSpace` in the stream
/// crate).
pub struct ModeSpaceLadder {
    /// Window lengths in observation steps, strictly increasing (same
    /// normalization as [`crate::window::WindowedForecaster::build`]).
    pub windows: Vec<usize>,
    /// Per-rung reduced operators, aligned with `windows`.
    pub rungs: Vec<ModeSpaceRung>,
    /// Per-rung forecast standard deviations — identical to the windowed
    /// forecaster's (the posterior std is data-independent, so reduction
    /// does not touch it).
    pub q_stds: Vec<Vec<f64>>,
    /// Number of sensors `Nd` (data entries per observation step).
    pub nd: usize,
    /// The POD observation basis `U` (`(Nd·Nt) × r`, owned) the online
    /// fold projects through — must be the *same* basis the engine's
    /// identification `PodBank` holds when the fold is shared.
    modes: DMatrix,
}

impl ModeSpaceLadder {
    /// Precompute the reduced ladder from the offline phases and a POD
    /// observation basis (`modes`: `(Nd·Nt) × r`, e.g.
    /// [`crate::PodBank::modes`]). Each rung's dense `T_w` is
    /// materialized once (`window::rung_operator` — bitwise the
    /// windowed forecaster's operator), projected, bounded, and dropped.
    pub fn build(
        p1: &Phase1,
        p2: &Phase2,
        p3: &Phase3,
        windows: &[usize],
        modes: &DMatrix,
        opts: &ModeSpaceOptions,
    ) -> Self {
        let nd = p1.f.out_dim;
        assert_eq!(
            modes.nrows(),
            nd * p1.f.nt,
            "POD basis and twin disagree on the data dimension"
        );
        assert!(
            modes.ncols() >= 1,
            "mode-space ladder needs a nonempty basis"
        );
        let ws = window::normalize_windows(windows, p1.f.nt);
        let per_rung: Vec<(ModeSpaceRung, Vec<f64>)> = ws
            .par_iter()
            .map(|&w| reduce_rung(p1, p2, p3, w, nd, modes, opts))
            .collect();
        let (rungs, q_stds) = per_rung.into_iter().unzip();
        ModeSpaceLadder {
            windows: ws,
            rungs,
            q_stds,
            nd,
            modes: modes.clone(),
        }
    }

    /// The shared POD observation basis `U` (`(Nd·Nt) × r`).
    pub fn modes(&self) -> &DMatrix {
        &self.modes
    }

    /// Basis rank `r` — the per-stream fold-state length per rung.
    pub fn rank(&self) -> usize {
        self.modes.ncols()
    }

    /// True when the reduced inference operators were built
    /// ([`ModeSpaceOptions::inference`]).
    pub fn has_inference(&self) -> bool {
        self.rungs.iter().all(|r| r.m_map.is_some())
    }

    /// Index of the widest precomputed window not exceeding `steps`
    /// (same contract as the windowed forecaster's `window_for`).
    pub fn window_for(&self, steps: usize) -> Option<usize> {
        self.windows.iter().rposition(|&w| w <= steps)
    }

    /// Forecast-mean error bound at rung `i` for window data of 2-norm
    /// `d_norm`: `‖q̂ − q‖₂ ≤ trunc_bound · d_norm` against the dense
    /// windowed forecast.
    pub fn mean_error_bound(&self, i: usize, d_norm: f64) -> f64 {
        self.rungs[i].trunc_bound * d_norm
    }

    /// Inference-mean error bound at rung `i` (same shape as
    /// [`Self::mean_error_bound`]; 0 without reduced inference).
    pub fn inference_error_bound(&self, i: usize, d_norm: f64) -> f64 {
        self.rungs[i].m_trunc_bound * d_norm
    }

    /// One-shot mode-space forecast of a window-data block (project +
    /// reduced GEMM) — the reference the streaming engine's shared
    /// incremental fold is tested against. `d_window` is
    /// `windows[i]·Nd × B`.
    pub fn forecast_batch(&self, i: usize, d_window: &DMatrix) -> ForecastBatch {
        let t0 = Instant::now();
        let k = self.windows[i] * self.nd;
        assert_eq!(d_window.nrows(), k, "window {i} expects {k} data rows");
        let u_k = self.basis_restriction(k);
        let a = u_k.matmul_tn(d_window); // r × B projection
        ForecastBatch {
            q_map: self.rungs[i].q_map.matmul(&a),
            q_std: self.q_stds[i].clone(),
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Resident elements of the reduced ladder (basis + per-rung
    /// operators) — compare with [`Self::windowed_resident_elems`].
    pub fn resident_elems(&self) -> usize {
        self.modes.nrows() * self.modes.ncols()
            + self
                .rungs
                .iter()
                .map(|r| {
                    r.q_map.nrows() * r.q_map.ncols()
                        + r.m_map.as_ref().map_or(0, |m| m.nrows() * m.ncols())
                })
                .sum::<usize>()
    }

    /// Resident elements the dense windowed ladder holds for the same
    /// rungs (`Σ Nq·Nt × w·Nd`).
    pub fn windowed_resident_elems(&self) -> usize {
        let nq = self.q_stds.first().map_or(0, |s| s.len());
        self.windows.iter().map(|&w| nq * w * self.nd).sum()
    }

    /// The leading `k` rows of the basis as a dense block (offline /
    /// reference use only — the online fold streams the rows in place).
    fn basis_restriction(&self, k: usize) -> DMatrix {
        DMatrix::from_fn(k, self.rank(), |i, j| self.modes[(i, j)])
    }
}

/// Reduce one rung: materialize `T_w`, absorb the Gram pseudo-inverse of
/// the basis restriction, and compute the exact residual bounds. The SVD
/// seed is varied per rung by the same window-length mix as the
/// goal-oriented ladder, so rebuilds are bitwise reproducible.
fn reduce_rung(
    p1: &Phase1,
    p2: &Phase2,
    p3: &Phase3,
    w: usize,
    nd: usize,
    modes: &DMatrix,
    opts: &ModeSpaceOptions,
) -> (ModeSpaceRung, Vec<f64>) {
    let k = w * nd;
    let r = modes.ncols();
    let (t_w, std) = window::rung_operator(p2, p3, k);
    let u_k = DMatrix::from_fn(k, r, |i, j| modes[(i, j)]);
    let svd = {
        let seeded = SvdOptions {
            seed: opts.svd.seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..opts.svd
        };
        randomized_svd(&u_k, r, seeded)
    };
    // X = U_k (U_kᵀU_k)⁺ (k × r): the offline Gram absorption. The online
    // fold then stays the raw shared projection a = U_kᵀ d.
    let x = svd.pinv_transpose(opts.gram_rtol);
    let q_map = t_w.matmul(&x);

    // Exact residual ‖T_w − F̃_w U_kᵀ‖_F, materialized once and dropped.
    let mut diff = q_map.matmul_nt(&u_k);
    diff.add_scaled(-1.0, &t_w);
    let trunc_bound = diff.norm_fro();
    drop(t_w);

    let (m_map, m_trunc_bound) = if opts.inference {
        // Dense M_w via the batched windowed inference on the identity —
        // offline-only cost; the reduced operator is its projection and
        // the residual is exact by construction.
        let m_dense = infer_window_batch(p1, p2, &DMatrix::identity(k), w).m_map;
        let m_red = m_dense.matmul(&x);
        let mut m_diff = m_red.matmul_nt(&u_k);
        m_diff.add_scaled(-1.0, &m_dense);
        (Some(m_red), m_diff.norm_fro())
    } else {
        (None, 0.0)
    };

    (
        ModeSpaceRung {
            q_map,
            trunc_bound,
            m_map,
            m_trunc_bound,
        },
        std,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwinConfig;
    use crate::twin::DigitalTwin;
    use crate::window::WindowedForecaster;
    use tsunami_linalg::svd::orthonormalize;

    fn setup() -> DigitalTwin {
        DigitalTwin::offline(TwinConfig::tiny(), 0.03)
    }

    /// A deterministic full orthogonal basis of the twin's data space
    /// (square `n × n`): every rung restriction has orthonormal rows, so
    /// the reduced ladder must reproduce the dense one on arbitrary data.
    fn complete_basis(n: usize) -> DMatrix {
        let mut m = DMatrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                0.3 * ((i * 7 + j * 3) as f64 * 0.41).sin()
            }
        });
        let kept = orthonormalize(&mut m);
        assert_eq!(kept, n, "basis must be complete");
        m
    }

    /// A genuinely rank-`r` basis: leading SVD modes of a smooth block
    /// plus a small identity shift (the smooth part alone has numerical
    /// rank 4, which would silently clip every requested rank to 4).
    fn truncated_basis(n: usize, r: usize) -> DMatrix {
        let block = DMatrix::from_fn(n, n, |i, j| {
            let smooth =
                ((i * 3 + 2 * j) as f64 * 0.11).sin() + 0.4 * ((i + 5 * j) as f64 * 0.07).cos();
            smooth + if i == j { 0.05 } else { 0.0 }
        });
        let svd = randomized_svd(&block, r, SvdOptions::default());
        assert_eq!(svd.u.ncols(), r, "generator block must have rank >= {r}");
        svd.u
    }

    #[test]
    fn complete_basis_reproduces_the_windowed_forecaster() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n = twin.n_data();
        let wf = twin.windowed(&[nt / 2, nt]);
        let ms = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt / 2, nt],
            &complete_basis(n),
            &ModeSpaceOptions::default(),
        );
        assert_eq!(ms.windows, wf.windows);
        for i in 0..ms.windows.len() {
            let k = ms.windows[i] * ms.nd;
            // Rank(U_k) = k (orthonormal rows): the projector is the
            // identity and the certified bound collapses to roundoff.
            assert!(
                ms.rungs[i].trunc_bound < 1e-8,
                "rung {i} bound {} should be roundoff",
                ms.rungs[i].trunc_bound
            );
            let d = DMatrix::from_fn(k, 3, |r, c| ((r * 5 + 3 * c) as f64 * 0.13).sin());
            let dense = wf.forecast_batch(i, &d);
            let reduced = ms.forecast_batch(i, &d);
            // Same answer within cancellation slack (the projection round
            // trip is not bitwise), same std bitwise.
            let scale = dense.q_map.norm_fro().max(1e-300);
            let mut diff = reduced.q_map.clone();
            diff.add_scaled(-1.0, &dense.q_map);
            assert!(
                diff.norm_fro() < 1e-9 * scale,
                "rung {i}: reduced forecast drifted {}",
                diff.norm_fro() / scale
            );
            assert_eq!(reduced.q_std, dense.q_std);
        }
    }

    #[test]
    fn truncated_basis_stays_within_its_certified_bound() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n = twin.n_data();
        let wf = twin.windowed(&[nt / 2, nt]);
        let ms = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt / 2, nt],
            &truncated_basis(n, 6),
            &ModeSpaceOptions::default(),
        );
        for i in 0..ms.windows.len() {
            let k = ms.windows[i] * ms.nd;
            let d: Vec<f64> = (0..k).map(|r| (r as f64 * 0.21).cos()).collect();
            let d_norm = d.iter().map(|v| v * v).sum::<f64>().sqrt();
            let db = DMatrix::from_vec(k, 1, d);
            let dense = wf.forecast_batch(i, &db);
            let reduced = ms.forecast_batch(i, &db);
            let err: f64 = reduced
                .q_map
                .as_slice()
                .iter()
                .zip(dense.q_map.as_slice())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let bound = ms.mean_error_bound(i, d_norm);
            assert!(
                ms.rungs[i].trunc_bound > 0.0 || k <= ms.rank(),
                "rung {i} should truncate"
            );
            assert!(
                err <= bound + 1e-12,
                "rung {i}: error {err} exceeds certified bound {bound}"
            );
        }
    }

    #[test]
    fn in_span_data_is_forecast_exactly_at_any_rank() {
        // Data in the basis's span are reproduced regardless of
        // truncation: the residual operator annihilates them.
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n = twin.n_data();
        let basis = truncated_basis(n, 4);
        let ms = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt],
            &basis,
            &ModeSpaceOptions::default(),
        );
        let wf = twin.windowed(&[nt]);
        // d = U c for a fixed coefficient vector.
        let c = DMatrix::from_fn(4, 1, |i, _| (i as f64 + 1.0) * 0.3);
        let d = basis.matmul(&c);
        let dense = wf.forecast_batch(0, &d);
        let reduced = ms.forecast_batch(0, &d);
        let scale = dense.q_map.norm_fro().max(1e-300);
        let mut diff = reduced.q_map.clone();
        diff.add_scaled(-1.0, &dense.q_map);
        assert!(
            diff.norm_fro() < 1e-9 * scale,
            "in-span data must forecast exactly: {}",
            diff.norm_fro() / scale
        );
    }

    #[test]
    fn reduced_inference_tracks_the_windowed_inference() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n = twin.n_data();
        let opts = ModeSpaceOptions {
            inference: true,
            ..ModeSpaceOptions::default()
        };
        let ms = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt / 2, nt],
            &complete_basis(n),
            &opts,
        );
        assert!(ms.has_inference());
        for i in 0..ms.windows.len() {
            let k = ms.windows[i] * ms.nd;
            assert!(ms.rungs[i].m_trunc_bound < 1e-8, "rung {i} m-bound");
            let d = DMatrix::from_fn(k, 2, |r, c| ((r + 3 * c) as f64 * 0.17).cos());
            let dense = infer_window_batch(&twin.phase1, &twin.phase2, &d, ms.windows[i]).m_map;
            let u_k = DMatrix::from_fn(k, ms.rank(), |r, c| ms.modes()[(r, c)]);
            let a = u_k.matmul_tn(&d);
            let reduced = ms.rungs[i].m_map.as_ref().unwrap().matmul(&a);
            let scale = dense.norm_fro().max(1e-300);
            let mut diff = reduced;
            diff.add_scaled(-1.0, &dense);
            assert!(
                diff.norm_fro() < 1e-8 * scale,
                "rung {i}: reduced inference drifted {}",
                diff.norm_fro() / scale
            );
        }
    }

    #[test]
    fn rebuilds_are_bitwise_reproducible_and_seeded_per_rung() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n = twin.n_data();
        let basis = truncated_basis(n, 5);
        let opts = ModeSpaceOptions::default();
        let a = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt / 2, nt],
            &basis,
            &opts,
        );
        let b = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt / 2, nt],
            &basis,
            &opts,
        );
        for i in 0..a.rungs.len() {
            // The regression pin: identical options must reproduce every
            // reduced factor bit for bit (per-rung seeds are derived, not
            // drawn from shared state).
            assert_eq!(
                a.rungs[i].q_map.as_slice(),
                b.rungs[i].q_map.as_slice(),
                "rung {i} not reproducible"
            );
            assert_eq!(a.rungs[i].trunc_bound, b.rungs[i].trunc_bound);
        }
        // A different base seed draws different test matrices — the seed
        // actually reaches the factorization.
        let other = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[nt / 2, nt],
            &basis,
            &ModeSpaceOptions {
                svd: SvdOptions {
                    seed: 0xDEAD_BEEF,
                    ..SvdOptions::default()
                },
                ..opts
            },
        );
        assert!(
            a.rungs[0].q_map.as_slice() != other.rungs[0].q_map.as_slice(),
            "base seed must reach the per-rung factorizations"
        );
    }

    #[test]
    fn ladder_normalizes_windows_and_sizes_like_the_forecaster() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n = twin.n_data();
        let basis = truncated_basis(n, 3);
        let ms = ModeSpaceLadder::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[2, 1, nt, 2, nt + 7],
            &basis,
            &ModeSpaceOptions::default(),
        );
        assert_eq!(ms.windows, vec![1, 2, nt]);
        assert_eq!(ms.rank(), 3);
        assert_eq!(ms.window_for(0), None);
        assert_eq!(ms.window_for(1), Some(0));
        assert_eq!(ms.window_for(nt + 5), Some(2));
        assert!(!ms.has_inference());
        assert!(
            ms.resident_elems() < ms.windowed_resident_elems() + n * 3,
            "reduced ladder should be rank-sized: {} vs dense {}",
            ms.resident_elems(),
            ms.windowed_resident_elems()
        );
        let wf = WindowedForecaster::build(
            &twin.phase1,
            &twin.phase2,
            &twin.phase3,
            &[2, 1, nt, 2, nt + 7],
        );
        for i in 0..ms.windows.len() {
            assert_eq!(ms.q_stds[i], wf.q_stds[i], "stds must carry over bitwise");
        }
    }
}
