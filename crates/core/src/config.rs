//! Twin configuration: one struct describing the whole scenario.

use std::sync::Arc;
use tsunami_fem::kernels::{KernelContext, KernelVariant};
use tsunami_mesh::{Bathymetry, CascadiaBathymetry, FlatBathymetry, HexMesh};
use tsunami_solver::{
    BilinearParamMap, PhysicalParams, QoiArray, SensorArray, TimeGrid, WaveOperator, WaveSolver,
};

/// Which analytic bathymetry to mesh.
#[derive(Clone, Copy, Debug)]
pub enum BathymetryKind {
    /// Constant depth (m) — analytic test cases.
    Flat(f64),
    /// Shelf–slope–trench Cascadia-like margin with the given abyssal and
    /// shelf depths (m). Scaled-down demos use a deeper shelf than the real
    /// 150 m one so the vertical CFL constraint stays tractable.
    Cascadia {
        /// Abyssal-plain depth (m).
        deep: f64,
        /// Shelf depth (m).
        shallow: f64,
    },
}

/// Full description of a digital-twin scenario.
#[derive(Clone, Debug)]
pub struct TwinConfig {
    /// Elements across the margin.
    pub nx: usize,
    /// Elements along strike.
    pub ny: usize,
    /// Elements through the water column.
    pub nz: usize,
    /// Pressure polynomial order (velocity is `order − 1`).
    pub order: usize,
    /// Cross-margin extent (m).
    pub lx: f64,
    /// Along-strike extent (m).
    pub ly: f64,
    /// Bathymetry model.
    pub bathymetry: BathymetryKind,
    /// Sound speed override (m/s); `None` = real seawater (1500 m/s).
    /// Scaled-down demos reduce it to relax the acoustic CFL while keeping
    /// the acoustic–gravity structure.
    pub sound_speed: Option<f64>,
    /// Sensor array layout: `sx × sy` grid over the offshore band
    /// `x ∈ [0.1, 0.55]·lx` (the paper's 600 hypothesized OBP sensors).
    pub sensor_grid: (usize, usize),
    /// Number of QoI forecast points, placed along the line
    /// `x = qoi_x_frac·lx` (the paper's 21 coastal forecast locations).
    pub n_qoi: usize,
    /// Cross-margin fraction of the QoI line (0.85 ≈ nearshore). Small
    /// test domains place it closer so gravity waves reach it within the
    /// observation window.
    pub qoi_x_frac: f64,
    /// Inversion parameter grid (cells in x, y) covering the footprint.
    pub inv_grid: (usize, usize),
    /// Observation steps `Nt`.
    pub nt_obs: usize,
    /// Observation cadence (s) — the paper observes at 1 Hz.
    pub dt_obs: f64,
    /// CFL safety factor for the PDE step.
    pub cfl_safety: f64,
    /// Prior correlation length (m).
    pub prior_ell: f64,
    /// Prior pointwise standard deviation (m/s of seafloor velocity).
    pub prior_sigma: f64,
    /// Noise level as a fraction of the RMS clean datum
    /// (paper: 1% relative noise).
    pub noise_frac: f64,
    /// FEM kernel variant for the wave solver.
    pub kernel: KernelVariant,
}

impl TwinConfig {
    /// Minimal configuration for unit/integration tests: runs the entire
    /// offline+online pipeline in a few seconds.
    pub fn tiny() -> Self {
        TwinConfig {
            nx: 6,
            ny: 4,
            nz: 1,
            order: 3,
            lx: 6000.0,
            ly: 4000.0,
            bathymetry: BathymetryKind::Flat(500.0),
            sound_speed: Some(100.0),
            sensor_grid: (2, 2),
            n_qoi: 2,
            qoi_x_frac: 0.45,
            inv_grid: (6, 4),
            nt_obs: 12,
            dt_obs: 2.5,
            cfl_safety: 0.4,
            prior_ell: 1500.0,
            prior_sigma: 1.0,
            noise_frac: 0.01,
            kernel: KernelVariant::FusedPa,
        }
    }

    /// Mid-size demo used by the examples: a scaled Cascadia-like margin
    /// sized so the whole offline pipeline runs in a couple of minutes on a
    /// single CPU core.
    pub fn demo() -> Self {
        TwinConfig {
            nx: 12,
            ny: 18,
            nz: 2,
            order: 2,
            lx: 60e3,
            ly: 90e3,
            bathymetry: BathymetryKind::Cascadia {
                deep: 2500.0,
                shallow: 800.0,
            },
            sound_speed: Some(300.0),
            sensor_grid: (4, 4),
            n_qoi: 5,
            qoi_x_frac: 0.7,
            inv_grid: (10, 15),
            nt_obs: 18,
            dt_obs: 10.0,
            cfl_safety: 0.4,
            prior_ell: 15e3,
            prior_sigma: 0.5,
            noise_frac: 0.01,
            kernel: KernelVariant::FusedPa,
        }
    }

    /// The scaled margin-wide Cascadia scenario used by the experiment
    /// harness (Fig 3/4/Table III analogue). Heavier than [`Self::demo`].
    pub fn cascadia_scaled() -> Self {
        TwinConfig {
            nx: 16,
            ny: 24,
            nz: 2,
            order: 3,
            lx: 80e3,
            ly: 160e3,
            bathymetry: BathymetryKind::Cascadia {
                deep: 2600.0,
                shallow: 800.0,
            },
            sound_speed: Some(400.0),
            sensor_grid: (5, 6),
            n_qoi: 9,
            qoi_x_frac: 0.75,
            inv_grid: (12, 20),
            nt_obs: 24,
            dt_obs: 10.0,
            cfl_safety: 0.4,
            prior_ell: 20e3,
            prior_sigma: 0.5,
            noise_frac: 0.01,
            kernel: KernelVariant::FusedPa,
        }
    }

    /// Physics constants implied by the config.
    pub fn physics(&self) -> PhysicalParams {
        match self.sound_speed {
            Some(c) => PhysicalParams::slow_ocean(c),
            None => PhysicalParams::seawater(),
        }
    }

    /// Number of sensors `Nd`.
    pub fn n_sensors(&self) -> usize {
        self.sensor_grid.0 * self.sensor_grid.1
    }

    /// Spatial inversion parameters `Nm`.
    pub fn n_m(&self) -> usize {
        self.inv_grid.0 * self.inv_grid.1
    }

    /// Build the bathymetry object.
    pub fn bathymetry_model(&self) -> Box<dyn Bathymetry> {
        match self.bathymetry {
            BathymetryKind::Flat(d) => Box::new(FlatBathymetry { depth: d }),
            BathymetryKind::Cascadia { deep, shallow } => {
                let mut b = CascadiaBathymetry::standard(self.lx, self.ly);
                b.deep = deep;
                b.shallow = shallow;
                Box::new(b)
            }
        }
    }

    /// Sensor `(x, y)` positions: a grid over the offshore band.
    pub fn sensor_positions(&self) -> Vec<(f64, f64)> {
        let (sx, sy) = self.sensor_grid;
        let mut out = Vec::with_capacity(sx * sy);
        for j in 0..sy {
            for i in 0..sx {
                let fx = 0.10 + 0.45 * (i as f64 + 0.5) / sx as f64;
                let fy = 0.05 + 0.90 * (j as f64 + 0.5) / sy as f64;
                out.push((fx * self.lx, fy * self.ly));
            }
        }
        out
    }

    /// QoI forecast positions: spread along the nearshore line.
    pub fn qoi_positions(&self) -> Vec<(f64, f64)> {
        (0..self.n_qoi)
            .map(|i| {
                let fy = (i as f64 + 0.5) / self.n_qoi as f64;
                (self.qoi_x_frac * self.lx, fy * self.ly)
            })
            .collect()
    }

    /// Build the wave solver described by this configuration.
    pub fn build_solver(&self) -> WaveSolver {
        let bath = self.bathymetry_model();
        let mesh = Arc::new(HexMesh::terrain_following(
            self.nx,
            self.ny,
            self.nz,
            self.lx,
            self.ly,
            bath.as_ref(),
        ));
        let min_edge = mesh.min_edge_length();
        let ctx = Arc::new(KernelContext::new(mesh, self.order));
        let params = self.physics();
        let op = WaveOperator::new(ctx, self.kernel, params);
        let sensors = SensorArray::on_seafloor(&op, &self.sensor_positions(), 0.03);
        let qoi = QoiArray::on_surface(&op, &self.qoi_positions());
        let pmap = BilinearParamMap::new(
            self.inv_grid.0,
            self.inv_grid.1,
            self.lx,
            self.ly,
            &op.bottom.coords,
        );
        let dt_stable = params.cfl_dt(min_edge, self.order, self.cfl_safety);
        let grid = TimeGrid::from_cadence(dt_stable, self.dt_obs, self.nt_obs);
        WaveSolver {
            op,
            grid,
            sensors,
            qoi,
            pmap: Box::new(pmap),
        }
    }

    /// Build the Matérn prior on the inversion grid.
    pub fn build_prior(&self) -> tsunami_prior::MaternPrior {
        tsunami_prior::MaternPrior::with_hyperparameters(
            self.inv_grid.0,
            self.inv_grid.1,
            self.lx,
            self.ly,
            self.prior_ell,
            self.prior_sigma,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_config_builds() {
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        assert_eq!(solver.sensors.len(), 4);
        assert_eq!(solver.qoi.len(), 2);
        assert_eq!(solver.n_m(), 24);
        assert_eq!(solver.grid.nt_obs, 12);
    }

    #[test]
    fn sensor_positions_inside_domain() {
        let cfg = TwinConfig::demo();
        for (x, y) in cfg.sensor_positions() {
            assert!(x > 0.0 && x < cfg.lx);
            assert!(y > 0.0 && y < cfg.ly);
        }
    }

    #[test]
    fn prior_has_requested_std() {
        let cfg = TwinConfig::tiny();
        let prior = cfg.build_prior();
        let var = prior.marginal_variance();
        let center = (cfg.inv_grid.1 / 2) * cfg.inv_grid.0 + cfg.inv_grid.0 / 2;
        assert!((var[center].sqrt() - cfg.prior_sigma).abs() < 1e-9);
    }
}
