//! The tsunami digital twin: real-time Bayesian inference and forecasting
//! (§V of the paper — the primary contribution).
//!
//! The framework decomposes the exact solution of the billion-parameter
//! Bayesian inverse problem into offline phases executed once and an online
//! phase executed per event (Fig 2):
//!
//! - **Phase 1** ([`phase1`]): `Nd + Nq` adjoint PDE solves build the block
//!   lower-triangular Toeplitz p2o map `F` and p2q map `Fq`.
//! - **Phase 2** ([`phase2`]): prior solves form `G = F Γprior` (equivalently
//!   `G* = Γprior F*`), then `Nd·Nt` FFT matvecs form the **data-space
//!   Hessian** `K = Γnoise + F Γprior Fᵀ`, which is Cholesky-factorized.
//!   This is the Sherman–Morrison–Woodbury move of the inverse operator from
//!   parameter space (dim `Nm·Nt`) to data space (dim `Nd·Nt`).
//! - **Phase 3** ([`phase3`]): the QoI posterior covariance
//!   `Γpost(q) = FqΓpriorFqᵀ − B K⁻¹ Bᵀ` (`B = FqΓpriorFᵀ`) and the
//!   **data-to-QoI map** `Q = B K⁻¹`, enabling forecasts that bypass
//!   parameter reconstruction entirely.
//! - **Phase 4** ([`phase4`]): given observations `d`, the exact posterior
//!   mean `m_map = Gᵀ K⁻¹ d` and forecast `q_map = Q d` with 95% credible
//!   intervals — sub-second online work.
//!
//! [`baseline`] implements the state-of-the-art comparator of §IV
//! (prior-preconditioned CG on the parameter-space normal equations), whose
//! agreement with the Phase 4 answer is itself a machine-precision test of
//! the SMW identity.
//!
//! Beyond the paper's headline pipeline, three operational extensions:
//!
//! - [`lti`]: the engine generalized over *any* linear time-invariant
//!   forward model (§VIII's broader-applicability claim), used by the
//!   elastic fault-slip/shake-map twin in `tsunami-elastic`.
//! - [`window`]: streaming early warning from a growing observation
//!   window, exact for every window length from one offline factorization.
//! - [`oed`]: goal-oriented optimal sensor placement (A-/D-optimal greedy
//!   design over candidate arrays), closing §III-A's sensor-network loop.
//! - [`bank`]: a scenario bank serving many observation streams against
//!   one precomputed twin through the batched Phase-4 path
//!   ([`phase4::infer_batch`] / [`phase4::predict_batch`]).

// Numeric kernels use index loops that mirror the tensor/math indices
// of the discretizations; enumerate()-style rewrites obscure the formulas.
#![allow(clippy::needless_range_loop)]

pub mod bank;
pub mod baseline;
pub mod config;
pub mod event;
pub mod evidence;
pub mod goal;
pub mod lti;
pub mod metrics;
pub mod modespace;
pub mod oed;
pub mod phase1;
pub mod phase2;
pub mod phase3;
pub mod phase4;
pub mod pod;
pub mod posterior;
pub mod stprior;
pub mod twin;
pub mod window;

pub use bank::{BankAssimilation, BankScenario, ScenarioBank, ScenarioSpec};
pub use baseline::{solve_map_cg, HessianOperator};
pub use config::{BathymetryKind, TwinConfig};
pub use event::SyntheticEvent;
pub use evidence::{calibrate_noise, log_bayes_factor, log_evidence};
pub use goal::{GoalLadder, GoalOptions, GoalRung};
pub use lti::{build_maps, LtiBayesEngine, LtiModel};
pub use modespace::{ModeSpaceLadder, ModeSpaceOptions, ModeSpaceRung};
pub use oed::{greedy_design, Criterion, OedCandidates, SensorDesign};
pub use phase1::Phase1;
pub use phase2::Phase2;
pub use phase3::Phase3;
pub use phase4::{Forecast, ForecastBatch, Inference, InferenceBatch};
pub use pod::PodBank;
pub use stprior::SpaceTimePrior;
pub use twin::DigitalTwin;
pub use window::{infer_window, infer_window_batch, WindowedForecaster};
