//! Bayesian optimal experimental design: where to put the sensors.
//!
//! §III-A of the paper notes that the NEPTUNE cabled observatory offers
//! "valuable data to inform optimal sensor placement" for proposed future
//! offshore deployments (SZ4D). This module closes that loop: given a set
//! of *candidate* seafloor sites, it selects the subset that most reduces
//! the uncertainty of the tsunami forecast itself — goal-oriented design,
//! not parameter-space design.
//!
//! Everything runs in data space, exactly like the inversion. For a
//! candidate subset `S` (row blocks of the candidate p2o map `F`):
//!
//! ```text
//!   Γpost(q; S) = A0 − B_S (σ²I + P_SS)⁻¹ B_Sᵀ,
//!   A0 = Fq Γprior Fqᵀ,  B = Fq Γprior Fᵀ,  P = F Γprior Fᵀ,
//! ```
//!
//! so the *only* quantities needed are the prior Gram matrices `P`, `B`,
//! `A0` over the full candidate array — computed once with FFT matvecs —
//! and every subset evaluation is a small dense Cholesky. Two classical
//! criteria are provided:
//!
//! - **A-optimal (goal-oriented)**: minimize `trace Γpost(q; S)` — the
//!   total forecast variance at the warning locations.
//! - **D-optimal**: maximize the expected information gain
//!   `½ log det(I + P_SS/σ²)`, a monotone submodular set function, for
//!   which greedy selection carries the Nemhauser–Wolsey–Fisher
//!   `(1 − 1/e)` guarantee.

use crate::phase1::Phase1;
use crate::phase2::{form_k, Phase2};
use crate::phase3::Phase3;
use rayon::prelude::*;
use tsunami_linalg::{Cholesky, DMatrix};

/// Prior Gram matrices over a candidate sensor array, ready for subset
/// evaluation.
pub struct OedCandidates {
    /// `P = F Γprior Fᵀ` over all candidates (`Nc·Nt × Nc·Nt`).
    pub p: DMatrix,
    /// `B = Fq Γprior Fᵀ` (`Nq·Nt × Nc·Nt`).
    pub b: DMatrix,
    /// `A0 = Fq Γprior Fqᵀ` (`Nq·Nt × Nq·Nt`).
    pub a0: DMatrix,
    /// Number of candidate sensors `Nc`.
    pub n_cand: usize,
    /// Observation steps `Nt`.
    pub nt: usize,
    /// Noise variance σ².
    pub sigma2: f64,
}

/// Selection criterion for [`greedy_design`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Criterion {
    /// Minimize the total QoI posterior variance `trace Γpost(q; S)`.
    AOptimal,
    /// Maximize the expected information gain `½ log det(I + P_SS/σ²)`.
    DOptimal,
}

/// Result of a greedy design: the chosen sensors in pick order and the
/// objective value after each pick.
#[derive(Clone, Debug)]
pub struct SensorDesign {
    /// Candidate indices in the order they were selected.
    pub selected: Vec<usize>,
    /// Objective after each pick: `trace Γpost(q)` for A-optimal
    /// (decreasing), information gain for D-optimal (increasing).
    pub objective_path: Vec<f64>,
}

impl OedCandidates {
    /// Assemble the Gram matrices from the offline products of a twin
    /// built over the *candidate* array (its Phase 1/2/3 treat every
    /// candidate as a live sensor).
    pub fn build(p1: &Phase1, p2: &Phase2, p3: &Phase3) -> Self {
        // P = K − σ²I, but re-forming it via FFT matvecs with zero noise
        // avoids needing K itself (Phase 2 only keeps its factor).
        let p = form_k(&p1.fast_f, &p2.fast_g, 0.0);
        OedCandidates {
            p,
            b: p3.b.clone(),
            a0: p3.a0.clone(),
            n_cand: p1.f.out_dim,
            nt: p1.f.nt,
            sigma2: p2.sigma2,
        }
    }

    /// Data-space row indices of a sensor subset (time-major layout:
    /// sensor `r` occupies rows `{t·Nc + r}`).
    pub fn subset_indices(&self, sensors: &[usize]) -> Vec<usize> {
        let mut idx = Vec::with_capacity(sensors.len() * self.nt);
        for t in 0..self.nt {
            for &r in sensors {
                assert!(r < self.n_cand, "candidate index {r} out of range");
                idx.push(t * self.n_cand + r);
            }
        }
        idx
    }

    /// Total QoI posterior variance `trace Γpost(q; S)` for a subset.
    /// The empty set returns the prior value `trace A0`.
    pub fn qoi_trace(&self, sensors: &[usize]) -> f64 {
        let prior_trace: f64 = self.a0.diag().iter().sum();
        if sensors.is_empty() {
            return prior_trace;
        }
        let idx = self.subset_indices(sensors);
        let k = self.restrict_k(&idx);
        let ch = Cholesky::factor(&k).expect("restricted data-space Hessian must be SPD");
        // reduction = trace(B_S K_S⁻¹ B_Sᵀ) = Σ_ij B_S[i,j]·X[j,i], X = K_S⁻¹ B_Sᵀ.
        let nq = self.b.nrows();
        let bs = DMatrix::from_fn(nq, idx.len(), |r, c| self.b[(r, idx[c])]);
        let x = ch.solve_multi(&bs.transpose());
        let mut reduction = 0.0;
        for r in 0..nq {
            for c in 0..idx.len() {
                reduction += bs[(r, c)] * x[(c, r)];
            }
        }
        prior_trace - reduction
    }

    /// Expected information gain `½ log det(I + P_SS/σ²)` for a subset.
    pub fn info_gain(&self, sensors: &[usize]) -> f64 {
        if sensors.is_empty() {
            return 0.0;
        }
        let idx = self.subset_indices(sensors);
        let k = self.restrict_k(&idx);
        let ch = Cholesky::factor(&k).expect("restricted data-space Hessian must be SPD");
        0.5 * (ch.log_det() - idx.len() as f64 * self.sigma2.ln())
    }

    /// `K_S = σ²I + P[idx, idx]`.
    fn restrict_k(&self, idx: &[usize]) -> DMatrix {
        let mut k = DMatrix::from_fn(idx.len(), idx.len(), |r, c| self.p[(idx[r], idx[c])]);
        k.shift_diag(self.sigma2);
        k.symmetrize();
        k
    }
}

/// Greedily select `n_pick` sensors from the candidate array: at each step
/// add the candidate with the best marginal improvement of the criterion,
/// evaluated exactly (fresh restricted Cholesky per candidate, in
/// parallel over candidates).
pub fn greedy_design(cand: &OedCandidates, n_pick: usize, criterion: Criterion) -> SensorDesign {
    assert!(
        n_pick <= cand.n_cand,
        "cannot pick {n_pick} of {} candidates",
        cand.n_cand
    );
    let mut selected: Vec<usize> = Vec::with_capacity(n_pick);
    let mut objective_path = Vec::with_capacity(n_pick);
    for _ in 0..n_pick {
        let best = (0..cand.n_cand)
            .into_par_iter()
            .filter(|r| !selected.contains(r))
            .map(|r| {
                let mut trial = selected.clone();
                trial.push(r);
                let score = match criterion {
                    // Lower trace is better: negate so we can max everywhere.
                    Criterion::AOptimal => -cand.qoi_trace(&trial),
                    Criterion::DOptimal => cand.info_gain(&trial),
                };
                (score, r)
            })
            // Argmax as a parallel reduction: the operator is associative
            // and order-independent (ties broken toward the smaller index),
            // so the result is identical for any piece grouping — pinned
            // against the serial std fold in `reduce_matches_serial_fold`.
            .reduce(
                || (f64::NEG_INFINITY, usize::MAX),
                |a, b| {
                    if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                        b
                    } else {
                        a
                    }
                },
            );
        assert!(best.1 != usize::MAX, "no candidate could be evaluated");
        selected.push(best.1);
        objective_path.push(match criterion {
            Criterion::AOptimal => -best.0,
            Criterion::DOptimal => best.0,
        });
    }
    SensorDesign {
        selected,
        objective_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwinConfig;
    use crate::twin::DigitalTwin;
    use rand::prelude::IndexedRandom;
    use tsunami_linalg::random::seeded_rng;

    fn candidates() -> (DigitalTwin, OedCandidates) {
        let twin = DigitalTwin::offline(TwinConfig::tiny(), 0.03);
        let cand = OedCandidates::build(&twin.phase1, &twin.phase2, &twin.phase3);
        (twin, cand)
    }

    #[test]
    fn full_subset_reproduces_phase3_trace() {
        let (twin, cand) = candidates();
        let all: Vec<usize> = (0..cand.n_cand).collect();
        let trace_full = cand.qoi_trace(&all);
        let trace_p3: f64 = twin.phase3.gamma_post_q.diag().iter().sum();
        assert!(
            (trace_full - trace_p3).abs() < 1e-7 * trace_p3.abs().max(1e-12),
            "full-array OED trace {trace_full} vs Phase 3 trace {trace_p3}"
        );
    }

    #[test]
    fn adding_sensors_never_hurts() {
        // Monotonicity: Γpost(q; S) ⪰ Γpost(q; T) for S ⊆ T, so the trace
        // is non-increasing; info gain is non-decreasing.
        let (_twin, cand) = candidates();
        let mut set: Vec<usize> = Vec::new();
        let mut prev_trace = cand.qoi_trace(&set);
        let mut prev_gain = cand.info_gain(&set);
        for r in 0..cand.n_cand {
            set.push(r);
            let tr = cand.qoi_trace(&set);
            let ig = cand.info_gain(&set);
            assert!(tr <= prev_trace + 1e-9 * prev_trace.abs().max(1e-12));
            assert!(ig >= prev_gain - 1e-9);
            prev_trace = tr;
            prev_gain = ig;
        }
    }

    #[test]
    fn info_gain_is_submodular_on_chains() {
        // Diminishing returns: the gain of adding sensor r to S is at
        // least its gain when added to any superset T ⊇ S.
        let (_twin, cand) = candidates();
        let n = cand.n_cand;
        assert!(n >= 3, "test needs at least 3 candidates");
        let s: Vec<usize> = vec![0];
        let t: Vec<usize> = vec![0, 1];
        for r in 2..n {
            let mut sr = s.clone();
            sr.push(r);
            let mut tr = t.clone();
            tr.push(r);
            let gain_s = cand.info_gain(&sr) - cand.info_gain(&s);
            let gain_t = cand.info_gain(&tr) - cand.info_gain(&t);
            assert!(
                gain_s >= gain_t - 1e-9,
                "submodularity violated at r={r}: {gain_s} < {gain_t}"
            );
        }
    }

    #[test]
    fn greedy_a_optimal_beats_random_on_average() {
        let (_twin, cand) = candidates();
        let n_pick = (cand.n_cand / 2).max(1);
        let design = greedy_design(&cand, n_pick, Criterion::AOptimal);
        let greedy_trace = cand.qoi_trace(&design.selected);

        let mut rng = seeded_rng(42);
        let all: Vec<usize> = (0..cand.n_cand).collect();
        let mut rand_sum = 0.0;
        let trials = 20;
        for _ in 0..trials {
            let pick: Vec<usize> = all.sample(&mut rng, n_pick).copied().collect();
            rand_sum += cand.qoi_trace(&pick);
        }
        let rand_avg = rand_sum / trials as f64;
        assert!(
            greedy_trace <= rand_avg + 1e-9 * rand_avg.abs(),
            "greedy {greedy_trace} should beat random average {rand_avg}"
        );
    }

    #[test]
    fn greedy_objective_path_is_monotone() {
        let (_twin, cand) = candidates();
        let d_a = greedy_design(&cand, cand.n_cand, Criterion::AOptimal);
        for w in d_a.objective_path.windows(2) {
            assert!(w[1] <= w[0] + 1e-9 * w[0].abs().max(1e-12));
        }
        let d_d = greedy_design(&cand, cand.n_cand, Criterion::DOptimal);
        for w in d_d.objective_path.windows(2) {
            assert!(w[1] >= w[0] - 1e-9);
        }
        // No duplicates in either selection.
        let mut sa = d_a.selected.clone();
        sa.sort_unstable();
        sa.dedup();
        assert_eq!(sa.len(), cand.n_cand);
    }

    #[test]
    fn empty_design_returns_prior_uncertainty() {
        let (_twin, cand) = candidates();
        let prior_trace: f64 = cand.a0.diag().iter().sum();
        assert_eq!(cand.qoi_trace(&[]), prior_trace);
        assert_eq!(cand.info_gain(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_candidate_rejected() {
        let (_twin, cand) = candidates();
        let _ = cand.qoi_trace(&[cand.n_cand]);
    }

    /// The rayon-style `reduce(identity, op)` in `greedy_design` must pick
    /// exactly what the serial std `fold` it replaced would pick: the
    /// argmax operator is associative with a total tie-break order, so any
    /// parallel piece grouping agrees with the left-to-right fold.
    #[test]
    fn reduce_matches_serial_fold() {
        let (_twin, cand) = candidates();
        let n_pick = 3;
        let design = greedy_design(&cand, n_pick, Criterion::AOptimal);
        let mut selected: Vec<usize> = Vec::new();
        for _ in 0..n_pick {
            let best = (0..cand.n_cand)
                .filter(|r| !selected.contains(r))
                .map(|r| {
                    let mut trial = selected.clone();
                    trial.push(r);
                    (-cand.qoi_trace(&trial), r)
                })
                .fold((f64::NEG_INFINITY, usize::MAX), |a, b| {
                    if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
                        b
                    } else {
                        a
                    }
                });
            selected.push(best.1);
        }
        assert_eq!(design.selected, selected);
    }
}
