//! Phase 2 (offline): prior-smoothed maps and the data-space Hessian.
//!
//! With `G := F Γprior` (block Toeplitz with blocks `T_k Γ_s`, since
//! `Γprior` is block-diagonal in time with identical spatial blocks), the
//! Sherman–Morrison–Woodbury posterior is
//!
//! ```text
//!   Γpost = Γprior − Gᵀ K⁻¹ G,   K = Γnoise + F Γprior Fᵀ = σ²I + G Fᵀ.
//! ```
//!
//! `K` — the (prior-preconditioned) data-space Hessian — is dense of
//! dimension `Nd·Nt`: still large, but *tractable*, unlike the `Nm·Nt`
//! parameter-space Hessian. It is formed column-block-wise with FFT
//! matvecs (the paper's 252,000 matvecs in 100 minutes) and
//! Cholesky-factorized (cuSOLVERMp's 22 s step).

use crate::phase1::Phase1;
use rayon::prelude::*;
use tsunami_fft::{BlockToeplitz, FftBlockToeplitz};
use tsunami_hpc::TimerRegistry;
use tsunami_linalg::{Cholesky, DMatrix};
use tsunami_prior::MaternPrior;

/// Prior-smoothed maps and the factorized data-space Hessian.
pub struct Phase2 {
    /// `G = F Γprior` in FFT form (`Gᵀ` gives `G* = Γprior F*` actions).
    pub fast_g: FftBlockToeplitz,
    /// `Gq = Fq Γprior` in FFT form.
    pub fast_gq: FftBlockToeplitz,
    /// Cholesky factor of `K`.
    pub k_chol: Cholesky,
    /// Noise variance σ² on the diagonal of `K`.
    pub sigma2: f64,
}

impl Phase2 {
    /// Build from Phase 1 output and the spatial prior.
    pub fn build(p1: &Phase1, prior: &MaternPrior, noise_std: f64, timers: &TimerRegistry) -> Self {
        let g_blocks = timers.time("Phase 2: form G = F*Prior (prior solves)", || {
            smooth_blocks(&p1.f, prior)
        });
        let gq_blocks = timers.time("Phase 2: form Gq = Fq*Prior (prior solves)", || {
            smooth_blocks(&p1.fq, prior)
        });
        let fast_g = FftBlockToeplitz::from_blocks(&g_blocks);
        let fast_gq = FftBlockToeplitz::from_blocks(&gq_blocks);
        let sigma2 = noise_std * noise_std;
        let k = timers.time("Phase 2: form K (FFT matvecs)", || {
            form_k(&p1.fast_f, &fast_g, sigma2)
        });
        let k_chol = timers.time("Phase 2: factorize K (Cholesky)", || {
            Cholesky::factor(&k).expect("data-space Hessian must be SPD")
        });
        Phase2 {
            fast_g,
            fast_gq,
            k_chol,
            sigma2,
        }
    }

    /// Solve `K x = b`.
    pub fn k_solve(&self, b: &[f64]) -> Vec<f64> {
        self.k_chol.solve(b)
    }

    /// Solve `K X = B` for a block of right-hand sides — one panel-wise
    /// walk of the factor serves the whole batch (the online multi-scenario
    /// path of [`crate::phase4::infer_batch`]).
    pub fn k_solve_multi(&self, b: &DMatrix) -> DMatrix {
        self.k_chol.solve_multi(b)
    }
}

/// Apply the spatial prior to each defining block: `B_k = T_k Γ_s`
/// (right-multiplication = prior applied to the rows of `T_k`). This is the
/// paper's `Nd` (or `Nq`) multi-RHS prior solves, here via the DCT fast
/// path, parallel over blocks.
pub fn smooth_blocks(t: &BlockToeplitz, prior: &MaternPrior) -> BlockToeplitz {
    assert_eq!(t.in_dim, prior.n(), "prior dimension mismatch");
    let blocks: Vec<DMatrix> = t
        .blocks
        .par_iter()
        .map(|blk| prior.apply_cov_multi(&blk.transpose()).transpose())
        .collect();
    BlockToeplitz::new(blocks, t.out_dim, t.in_dim)
}

/// Form `K = σ²I + G Fᵀ` column-block-wise: for each block of unit vectors
/// `E`, compute `G (Fᵀ E)` with batched FFT matvecs.
pub fn form_k(fast_f: &FftBlockToeplitz, fast_g: &FftBlockToeplitz, sigma2: f64) -> DMatrix {
    let n = fast_f.nrows();
    let mut k = DMatrix::zeros(n, n);
    let chunk = 256.min(n);
    for c0 in (0..n).step_by(chunk) {
        let c1 = (c0 + chunk).min(n);
        let mut e = DMatrix::zeros(n, c1 - c0);
        for (jj, c) in (c0..c1).enumerate() {
            e[(c, jj)] = 1.0;
        }
        let x = fast_f.matmat_transpose(&e); // (Nm·Nt) × nc
        let y = fast_g.matmat(&x); // (Nd·Nt) × nc
        for (jj, c) in (c0..c1).enumerate() {
            for r in 0..n {
                k[(r, c)] = y[(r, jj)];
            }
        }
    }
    k.shift_diag(sigma2);
    // FΓFᵀ is symmetric up to FFT roundoff; enforce it before Cholesky.
    k.symmetrize();
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwinConfig;
    use crate::stprior::SpaceTimePrior;
    use tsunami_linalg::LinearOperator;

    fn setup() -> (tsunami_solver::WaveSolver, Phase1, MaternPrior) {
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let timers = TimerRegistry::new();
        let p1 = Phase1::build(&solver, &timers);
        (solver, p1, cfg.build_prior())
    }

    #[test]
    fn k_is_spd_and_dominated_by_noise_floor() {
        let (_solver, p1, prior) = setup();
        let timers = TimerRegistry::new();
        let p2 = Phase2::build(&p1, &prior, 0.05, &timers);
        assert_eq!(p2.k_chol.dim(), p1.fast_f.nrows());
        // Solve a random system and verify the residual through K.
        let n = p2.k_chol.dim();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).sin()).collect();
        let x = p2.k_solve(&b);
        // K x via FFT ops: σ²x + G Fᵀ x.
        let mut ftx = vec![0.0; p1.fast_f.ncols()];
        p1.fast_f.matvec_transpose(&x, &mut ftx);
        let mut kx = vec![0.0; n];
        p2.fast_g.matvec(&ftx, &mut kx);
        for (v, &xi) in kx.iter_mut().zip(&x) {
            *v += p2.sigma2 * xi;
        }
        let err: f64 = kx
            .iter()
            .zip(&b)
            .map(|(a, c)| (a - c) * (a - c))
            .sum::<f64>()
            .sqrt();
        let bn: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(err < 1e-8 * bn, "K solve residual {err}");
    }

    #[test]
    fn g_equals_f_times_prior() {
        // G x must equal F (Γprior x) for arbitrary x.
        let (solver, p1, prior) = setup();
        let timers = TimerRegistry::new();
        let p2 = Phase2::build(&p1, &prior, 0.05, &timers);
        let stp = SpaceTimePrior::new(prior, solver.grid.nt_obs);
        let x: Vec<f64> = (0..stp.n()).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut gx1 = vec![0.0; p2.fast_g.nrows()];
        p2.fast_g.matvec(&x, &mut gx1);
        let mut px = vec![0.0; stp.n()];
        stp.apply_cov(&x, &mut px);
        let mut gx2 = vec![0.0; p1.fast_f.nrows()];
        p1.fast_f.matvec(&px, &mut gx2);
        for (a, b) in gx1.iter().zip(&gx2) {
            assert!((a - b).abs() < 1e-9 * a.abs().max(1e-12), "{a} vs {b}");
        }
    }

    #[test]
    fn k_matches_dense_construction() {
        // Small enough to materialize: K == σ²I + F Γ Fᵀ densely.
        let (solver, p1, prior) = setup();
        let sigma = 0.07;
        let k_fast = form_k(
            &p1.fast_f,
            {
                let g = smooth_blocks(&p1.f, &prior);
                &FftBlockToeplitz::from_blocks(&g)
            },
            sigma * sigma,
        );
        let stp = SpaceTimePrior::new(prior, solver.grid.nt_obs);
        let f_dense = p1.f.to_dense();
        let gamma_dense = stp.to_dense();
        let mut k_dense = f_dense.matmul(&gamma_dense).matmul_nt(&f_dense);
        k_dense.shift_diag(sigma * sigma);
        let mut diff = k_fast.clone();
        diff.add_scaled(-1.0, &k_dense);
        assert!(
            diff.norm_fro() < 1e-8 * k_dense.norm_fro(),
            "K mismatch: {}",
            diff.norm_fro()
        );
    }
}
