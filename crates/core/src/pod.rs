//! POD (low-rank) compression of a scenario bank: mode-space scenario
//! identification at a fraction of the exact GEMM's cost.
//!
//! Identification scores a live stream `d` against every scenario's clean
//! curve `c_j` via the squared misfit `‖d − c_j‖²` over the arrived rows.
//! The exact path streams the full `(Nd·Nt) × B` clean block; for banks
//! of 10⁴⁺ scenarios that block is the scaling wall. Following the
//! Fujita/Nomura ROM approach (arXiv:2407.03631), a [`PodBank`] holds a
//! rank-`r` POD basis `U` of the clean block `C` (its leading left
//! singular vectors) plus the mode-space coefficients `W = UᵀC`
//! (`r × B`). Expanding the misfit and substituting `C ≈ U·W` row-wise:
//!
//! ```text
//!   ‖d − c_j‖²  =  ‖d‖²  −  2 dᵀc_j  +  ‖c_j‖²
//!              ≈  ‖d‖²  −  2 (Uᵀd)ᵀ w_j  +  ‖c_j‖²,
//! ```
//!
//! so the only bank-width work left is the `r × B` product against the
//! running projection `a = Uᵀd` — `r ≪ Nd·Nt` means orders of magnitude
//! fewer flops per tick. The low-rank substitution holds restricted to
//! *any* row subset (each row `i` satisfies `C[i,·] ≈ U[i,·]·W`
//! independently), which is what lets a partially observed stream be
//! scored in mode space; `‖d‖²` accumulates as samples arrive and
//! `‖c_j‖²` comes exactly from the clean-energy prefix sums the exact
//! path already precomputes. The per-scenario residual energies
//! `‖c_j − U w_j‖²` bound the approximation error
//! (`|mis_pod − mis_exact| ≤ 2‖d‖·‖c_j − U w_j‖`).

use tsunami_linalg::svd::{energy_rank, randomized_svd, SvdOptions};
use tsunami_linalg::DMatrix;

/// A POD-compressed scenario bank: left modes, mode-space coefficients,
/// and per-scenario residual energies. Built by
/// [`crate::ScenarioBank::compress`].
pub struct PodBank {
    /// Left POD modes `U`, `(Nd·Nt) × r`, orthonormal columns.
    u: DMatrix,
    /// Mode-space coefficient block `W = Uᵀ·C`, `r × B` (scenario per
    /// column).
    coeffs: DMatrix,
    /// Singular values of the clean block, descending, length `r`.
    singular_values: Vec<f64>,
    /// Per-scenario residual energy `‖c_j − U w_j‖²` — the squared
    /// truncation error of scenario `j`'s clean curve.
    residual_energy: Vec<f64>,
    /// Total squared Frobenius energy of the clean block `‖C‖²_F`.
    total_energy: f64,
}

impl PodBank {
    /// Compress a clean observation block (`(Nd·Nt) × B`) to `rank`
    /// modes. The effective rank is `min(rank, Nd·Nt, B)`, possibly less
    /// if the block is numerically rank-deficient.
    pub fn from_clean_block(clean: &DMatrix, rank: usize, opts: SvdOptions) -> Self {
        let svd = randomized_svd(clean, rank, opts);
        let coeffs = svd.u.matmul_tn(clean);
        let residual_energy: Vec<f64> = (0..clean.ncols())
            .map(|j| {
                let full: f64 = (0..clean.nrows())
                    .map(|i| clean[(i, j)] * clean[(i, j)])
                    .sum();
                let modal: f64 = (0..coeffs.nrows())
                    .map(|k| coeffs[(k, j)] * coeffs[(k, j)])
                    .sum();
                (full - modal).max(0.0)
            })
            .collect();
        let total_energy = clean.norm_fro().powi(2);
        PodBank {
            u: svd.u,
            coeffs,
            singular_values: svd.s,
            residual_energy,
            total_energy,
        }
    }

    /// Number of retained modes `r`.
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Number of scenarios `B`.
    pub fn len(&self) -> usize {
        self.coeffs.ncols()
    }

    /// True if the bank holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The left POD modes `U`, `(Nd·Nt) × r` (orthonormal columns,
    /// row-major so row `i` is the `r`-vector every sample `i` projects
    /// through).
    pub fn modes(&self) -> &DMatrix {
        &self.u
    }

    /// The mode-space coefficient block `W = UᵀC`, `r × B`.
    pub fn mode_coeffs(&self) -> &DMatrix {
        &self.coeffs
    }

    /// Singular values of the clean block, descending.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Per-scenario residual energies `‖c_j − U w_j‖²`.
    pub fn residual_energy(&self) -> &[f64] {
        &self.residual_energy
    }

    /// Fraction of the clean block's squared Frobenius energy captured by
    /// the retained modes, in `[0, 1]`.
    pub fn captured_energy(&self) -> f64 {
        if self.total_energy <= 0.0 {
            return 1.0;
        }
        let kept: f64 = self.singular_values.iter().map(|s| s * s).sum();
        (kept / self.total_energy).min(1.0)
    }

    /// The smallest rank capturing at least `frac` of the block's energy
    /// *within this basis* (use it to re-cut an over-provisioned
    /// compression without re-running the SVD).
    pub fn rank_for_energy(&self, frac: f64) -> usize {
        energy_rank(&self.singular_values, frac)
    }

    /// Project a full data prefix onto the modes: `a = U[0..k,·]ᵀ d`
    /// (`d.len() = k ≤ Nd·Nt`). One-shot convenience; the streaming
    /// engine updates the projection incrementally per drained row range
    /// instead (`project_group` in the stream crate's `identify` module).
    pub fn project_prefix(&self, d: &[f64]) -> Vec<f64> {
        assert!(d.len() <= self.u.nrows(), "project: more samples than rows");
        let r = self.rank();
        let mut a = vec![0.0; r];
        for (i, &di) in d.iter().enumerate() {
            for (ak, &uik) in a.iter_mut().zip(self.u.row(i)) {
                *ak += di * uik;
            }
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::ScenarioBank;
    use crate::config::TwinConfig;

    fn toy_bank(rows: usize, b: usize) -> ScenarioBank {
        // Smooth trig curves (low-rank-ish) plus a per-entry hashed
        // perturbation so the block is numerically full rank.
        let clean = DMatrix::from_fn(rows, b, |i, j| {
            let h =
                (i as u64 * 0x9E37_79B9 + j as u64 * 0x85EB_CA6B).wrapping_mul(6364136223846793005);
            let noise = ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            ((i * 5 + 2 * j) as f64 * 0.17).sin()
                + 0.3 * ((i + 7 * j) as f64 * 0.05).cos()
                + 0.05 * noise
        });
        ScenarioBank::synthetic(clean.clone(), clean, 0.05)
    }

    #[test]
    fn full_rank_compression_is_exact() {
        let bank = toy_bank(40, 6);
        let pod = bank.compress(6);
        assert_eq!(pod.rank(), 6);
        assert_eq!(pod.len(), 6);
        assert!(pod.captured_energy() > 1.0 - 1e-12);
        for (j, &res) in pod.residual_energy().iter().enumerate() {
            assert!(res < 1e-10, "scenario {j} residual {res} should vanish");
        }
        // U·W reconstructs the clean block.
        let rec = pod.modes().matmul(pod.mode_coeffs());
        let mut diff = rec;
        diff.add_scaled(-1.0, bank.clean_observations());
        assert!(diff.norm_fro() < 1e-9 * bank.clean_observations().norm_fro());
    }

    #[test]
    fn truncated_compression_tracks_residuals() {
        let bank = toy_bank(64, 12);
        let pod = bank.compress(3);
        assert_eq!(pod.rank(), 3);
        // Reconstruction error per scenario equals the residual energy.
        let rec = pod.modes().matmul(pod.mode_coeffs());
        for j in 0..bank.len() {
            let err: f64 = (0..64)
                .map(|i| {
                    let e = rec[(i, j)] - bank.clean_observations()[(i, j)];
                    e * e
                })
                .sum();
            let res = pod.residual_energy()[j];
            assert!(
                (err - res).abs() < 1e-8 * res.max(1e-8),
                "scenario {j}: reconstruction {err} vs residual {res}"
            );
        }
        // Captured + residual energies account for the whole block.
        let res_sum: f64 = pod.residual_energy().iter().sum();
        let total = bank.clean_observations().norm_fro().powi(2);
        let kept = pod.captured_energy() * total;
        assert!((kept + res_sum - total).abs() < 1e-6 * total);
    }

    #[test]
    fn projection_of_a_scenario_recovers_its_coefficients() {
        let bank = toy_bank(48, 8);
        let pod = bank.compress(8);
        let d = bank.clean_observations().col(3);
        let a = pod.project_prefix(&d);
        for k in 0..pod.rank() {
            assert!(
                (a[k] - pod.mode_coeffs()[(k, 3)]).abs() < 1e-9,
                "mode {k} projection drift"
            );
        }
    }

    #[test]
    fn energy_rank_cut_on_generated_bank() {
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let specs = ScenarioBank::family(&cfg, 6, 9);
        let bank = ScenarioBank::generate(&cfg, &solver, &specs);
        let pod = bank.compress(6);
        // Physical wavefields from a smooth family are strongly
        // low-rank: a fraction of the modes carries 99% of the energy.
        let r99 = pod.rank_for_energy(0.99);
        assert!(r99 <= pod.rank());
        assert!(pod.captured_energy() > 0.99);
        assert!(
            pod.singular_values().windows(2).all(|w| w[0] >= w[1]),
            "singular values not descending"
        );
    }
}
