//! Phase 3 (offline): QoI posterior covariance and the data-to-QoI map.
//!
//! With `B := Fq Γprior Fᵀ = Gq Fᵀ` and `A0 := Fq Γprior Fqᵀ = Gq Fqᵀ`,
//!
//! ```text
//!   Γpost(q) = A0 − B K⁻¹ Bᵀ,      Q = Fq Γpost Fᵀ Γnoise⁻¹ = B K⁻¹,
//! ```
//!
//! where the `Q = B K⁻¹` simplification follows from
//! `F Γpost F* Γn⁻¹ = K⁻¹ F Γprior F* = K⁻¹ (K − σ²I) Γn⁻¹ σ² … ` —
//! algebraically, `Γpost F* Γn⁻¹ = Γprior F* K⁻¹`, the classic Kalman-gain
//! identity. `Q` is a small dense matrix: wave-height forecasts become a
//! single matvec on the observations, deployable "entirely without any HPC
//! infrastructure" (§VIII).

use crate::phase1::Phase1;
use crate::phase2::Phase2;
use tsunami_hpc::TimerRegistry;
use tsunami_linalg::DMatrix;

/// QoI posterior pieces.
pub struct Phase3 {
    /// Data-to-QoI map `Q = B K⁻¹` (`Nq·Nt × Nd·Nt`).
    pub q_map: DMatrix,
    /// QoI posterior covariance `Γpost(q)` (`Nq·Nt × Nq·Nt`).
    pub gamma_post_q: DMatrix,
    /// Pointwise posterior standard deviations `√diag(Γpost(q))`.
    pub q_std: Vec<f64>,
    /// Cross term `B = Fq Γprior Fᵀ` (`Nq·Nt × Nd·Nt`) — retained for
    /// window-restricted posteriors ([`crate::window`]) and sensor-design
    /// studies ([`crate::oed`]).
    pub b: DMatrix,
    /// Prior QoI covariance `A0 = Fq Γprior Fqᵀ` (`Nq·Nt × Nq·Nt`).
    pub a0: DMatrix,
}

impl Phase3 {
    /// Assemble `B`, `A0`, `Γpost(q)`, and `Q`.
    pub fn build(p1: &Phase1, p2: &Phase2, timers: &TimerRegistry) -> Self {
        let n_q = p1.fast_fq.nrows();
        let n_d = p1.fast_f.nrows();
        // B = Gq Fᵀ (n_q × n_d): columns via batched FFT matvecs.
        let b = timers.time("Phase 3: form B = Fq*Post basis", || {
            let mut e = DMatrix::zeros(n_d, n_d);
            for i in 0..n_d {
                e[(i, i)] = 1.0;
            }
            let x = p1.fast_f.matmat_transpose(&e);
            p2.fast_gq.matmat(&x)
        });
        // A0 = Gq Fqᵀ (n_q × n_q).
        let a0 = timers.time("Phase 3: form A0 = Fq*Prior*Fq'", || {
            let mut e = DMatrix::zeros(n_q, n_q);
            for i in 0..n_q {
                e[(i, i)] = 1.0;
            }
            let x = p1.fast_fq.matmat_transpose(&e);
            p2.fast_gq.matmat(&x)
        });
        let (gamma_post_q, q_map) = timers.time("Phase 3: Gamma_post(q) and Q", || {
            // X = K⁻¹ Bᵀ  (n_d × n_q); Q = Xᵀ; Γpost(q) = A0 − B X.
            let x = p2.k_chol.solve_multi(&b.transpose());
            let mut gpq = a0.clone();
            let bx = b.matmul(&x);
            gpq.add_scaled(-1.0, &bx);
            gpq.symmetrize();
            (gpq, x.transpose())
        });
        let q_std = gamma_post_q
            .diag()
            .iter()
            .map(|&v| v.max(0.0).sqrt())
            .collect();
        Phase3 {
            q_map,
            gamma_post_q,
            q_std,
            b,
            a0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwinConfig;
    use crate::stprior::SpaceTimePrior;
    use tsunami_linalg::{Cholesky, LinearOperator};

    #[test]
    fn phase3_matches_dense_bayesian_algebra() {
        // Build everything densely on the tiny problem and compare:
        //   Γpost(q) = Fq (Γ⁻¹ + FᵀF/σ²)⁻¹ Fqᵀ,  Q = Fq Γpost Fᵀ/σ².
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let timers = tsunami_hpc::TimerRegistry::new();
        let p1 = crate::phase1::Phase1::build(&solver, &timers);
        let prior = cfg.build_prior();
        let sigma = 0.04;
        let p2 = crate::phase2::Phase2::build(&p1, &prior, sigma, &timers);
        let p3 = Phase3::build(&p1, &p2, &timers);

        let stp = SpaceTimePrior::new(cfg.build_prior(), solver.grid.nt_obs);
        let f = p1.f.to_dense();
        let fq = p1.fq.to_dense();
        let gamma = stp.to_dense();
        // Γpost = Γ − ΓFᵀ(σ²I + FΓFᵀ)⁻¹FΓ (SMW, avoids Γ⁻¹ conditioning).
        let fg = f.matmul(&gamma);
        let mut k = fg.matmul_nt(&f);
        k.shift_diag(sigma * sigma);
        k.symmetrize();
        let kch = Cholesky::factor(&k).unwrap();
        let kinv_fg = kch.solve_multi(&fg);
        let mut gamma_post = gamma.clone();
        let correction = fg.matmul_tn(&kinv_fg);
        gamma_post.add_scaled(-1.0, &correction);
        let gpq_dense = fq.matmul(&gamma_post).matmul_nt(&fq);

        let mut diff = p3.gamma_post_q.clone();
        diff.add_scaled(-1.0, &gpq_dense);
        assert!(
            diff.norm_fro() < 1e-7 * gpq_dense.norm_fro().max(1e-12),
            "Γpost(q) mismatch: {} vs norm {}",
            diff.norm_fro(),
            gpq_dense.norm_fro()
        );

        // Q = Fq Γpost Fᵀ / σ².
        let mut q_dense = fq.matmul(&gamma_post).matmul_nt(&f);
        q_dense.scale(1.0 / (sigma * sigma));
        let mut qdiff = p3.q_map.clone();
        qdiff.add_scaled(-1.0, &q_dense);
        // The dense reference Fq·Γpost·Fᵀ/σ² amplifies the cancellation in
        // Γ − ΓFᵀK⁻¹FΓ by 1/σ² ≈ 600×; the fast path (B K⁻¹) has no such
        // subtraction. 0.1% agreement validates the Kalman-gain identity.
        assert!(
            qdiff.norm_fro() < (3e-3 * q_dense.norm_fro()).max(2e-5),
            "Q mismatch: {} (dense norm {})",
            qdiff.norm_fro(),
            q_dense.norm_fro()
        );
    }

    #[test]
    fn posterior_variance_below_prior_variance() {
        // Data must reduce (or not increase) the QoI uncertainty.
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let timers = tsunami_hpc::TimerRegistry::new();
        let p1 = crate::phase1::Phase1::build(&solver, &timers);
        let prior = cfg.build_prior();
        let p2 = crate::phase2::Phase2::build(&p1, &prior, 0.02, &timers);
        let p3 = Phase3::build(&p1, &p2, &timers);
        // Prior QoI variance = diag(A0); recompute here.
        let n_q = p1.fast_fq.nrows();
        let mut e = DMatrix::zeros(n_q, n_q);
        for i in 0..n_q {
            e[(i, i)] = 1.0;
        }
        let a0 = p2.fast_gq.matmat(&p1.fast_fq.matmat_transpose(&e));
        for i in 0..n_q {
            let post = p3.gamma_post_q[(i, i)];
            let pri = a0[(i, i)];
            assert!(
                post <= pri + 1e-10 * pri.abs().max(1e-12),
                "row {i}: posterior {post} > prior {pri}"
            );
        }
    }
}
