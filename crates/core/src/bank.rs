//! Scenario bank: "as many scenarios as you can imagine", assimilated in
//! one batched call.
//!
//! The goal-oriented companion paper (arXiv:2501.14911) frames real-time
//! warning as serving *many* candidate observation streams against one
//! precomputed twin. A [`ScenarioBank`] builds a family of synthetic
//! rupture scenarios (varying hypocenter, magnitude, and rise time),
//! generates their noisy observations with batched PDE solves, and drives
//! them through the batched online path ([`crate::phase4::infer_batch`] /
//! [`crate::phase4::predict_batch`]) so the whole bank pays one `K⁻¹`
//! factor walk and one batched FFT pass instead of `B` dispatches.

use crate::config::TwinConfig;
use crate::event::SyntheticEvent;
use crate::metrics::rel_l2;
use crate::phase4::{ForecastBatch, InferenceBatch};
use crate::pod::PodBank;
use crate::twin::DigitalTwin;
use tsunami_linalg::svd::SvdOptions;
use tsunami_linalg::DMatrix;
use tsunami_rupture::KinematicRupture;
use tsunami_solver::WaveSolver;

/// Parameters of one synthetic rupture scenario in a bank.
#[derive(Clone, Debug)]
pub struct ScenarioSpec {
    /// Along-strike hypocenter position as a fraction of `ly`.
    pub hypo_frac: f64,
    /// Peak final uplift (m) — the magnitude knob.
    pub peak_uplift: f64,
    /// Source rise time (s).
    pub rise_time: f64,
    /// Number of along-strike asperities.
    pub n_asperities: usize,
    /// Noise seed for this scenario's observations.
    pub seed: u64,
}

impl ScenarioSpec {
    /// Realize the spec as a kinematic rupture on the config's domain,
    /// at the shared margin-traversal front speed
    /// ([`SyntheticEvent::margin_rupture_speed`]).
    pub fn build_rupture(&self, cfg: &TwinConfig) -> KinematicRupture {
        let speed = SyntheticEvent::margin_rupture_speed(cfg);
        KinematicRupture::margin_wide(
            cfg.lx,
            cfg.ly,
            self.peak_uplift,
            self.n_asperities,
            self.hypo_frac,
            speed,
            self.rise_time,
        )
    }
}

/// One realized scenario: spec, rupture, and synthetic event.
pub struct BankScenario {
    /// The generating parameters.
    pub spec: ScenarioSpec,
    /// The kinematic rupture.
    pub rupture: KinematicRupture,
    /// Truth + noisy observations from the PDE forward solve.
    pub event: SyntheticEvent,
}

/// A bank of rupture scenarios with their stacked observation streams.
pub struct ScenarioBank {
    /// The realized scenarios. Empty for [`ScenarioBank::synthetic`]
    /// banks, which carry observation blocks only.
    pub scenarios: Vec<BankScenario>,
    /// Stacked noisy observations, `(Nd·Nt) × B` (scenario per column).
    d_obs: DMatrix,
    /// Stacked noise-free observations, `(Nd·Nt) × B` — the predicted data
    /// curves a live stream is scored against during event identification.
    d_clean: DMatrix,
    /// Representative noise level (RMS over the per-scenario levels).
    noise_std: f64,
}

/// The batched assimilation of a whole bank: inferences and forecasts for
/// every scenario, produced by one `infer_batch` + one `predict_batch`.
pub struct BankAssimilation {
    /// Posterior means, one column per scenario.
    pub inference: InferenceBatch,
    /// QoI forecasts, one column per scenario.
    pub forecast: ForecastBatch,
}

impl ScenarioBank {
    /// A diverse family of `n` specs: hypocenter, magnitude (peak uplift),
    /// rise time, and asperity count are spread with golden-ratio
    /// low-discrepancy sequences offset by `seed`, so any `n` gives broad,
    /// deterministic coverage of the scenario space.
    pub fn family(cfg: &TwinConfig, n: usize, seed: u64) -> Vec<ScenarioSpec> {
        const PHI: f64 = 0.618_033_988_749_894_9;
        let offset = (seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 11) as f64 / (1u64 << 53) as f64;
        (0..n)
            .map(|i| {
                let u = |stride: f64| (offset + i as f64 * PHI * stride).fract();
                ScenarioSpec {
                    hypo_frac: 0.15 + 0.70 * u(1.0),
                    peak_uplift: 1.0 + 3.0 * u(0.731),
                    rise_time: (1.5 + 2.5 * u(0.413)) * cfg.dt_obs,
                    n_asperities: 1 + (i % 4),
                    seed: seed.wrapping_add(101 + i as u64),
                }
            })
            .collect()
    }

    /// Realize the specs: sample each rupture on the inversion grid, run
    /// the `B` PDE forward solves batched (`WaveSolver::forward_batch`),
    /// add per-scenario noise, and stack the observation columns.
    pub fn generate(cfg: &TwinConfig, solver: &WaveSolver, specs: &[ScenarioSpec]) -> Self {
        assert!(!specs.is_empty(), "scenario bank needs at least one spec");
        let ruptures: Vec<KinematicRupture> = specs.iter().map(|s| s.build_rupture(cfg)).collect();
        let m_trues: Vec<Vec<f64>> = ruptures
            .iter()
            .map(|r| SyntheticEvent::sample_rupture(cfg, solver, r))
            .collect();
        let forwards = solver.forward_batch(&m_trues);
        let scenarios: Vec<BankScenario> = specs
            .iter()
            .zip(ruptures)
            .zip(m_trues.into_iter().zip(forwards))
            .map(|((spec, rupture), (m_true, (d_clean, q_true)))| {
                let event =
                    SyntheticEvent::from_forward(cfg, &rupture, m_true, d_clean, q_true, spec.seed);
                BankScenario {
                    spec: spec.clone(),
                    rupture,
                    event,
                }
            })
            .collect();
        let n_d = solver.n_data();
        let mut d_obs = DMatrix::zeros(n_d, scenarios.len());
        let mut d_clean = DMatrix::zeros(n_d, scenarios.len());
        for (j, s) in scenarios.iter().enumerate() {
            d_obs.set_col(j, &s.event.d_obs);
            d_clean.set_col(j, &s.event.d_clean);
        }
        let noise_std = (scenarios
            .iter()
            .map(|s| s.event.noise_std * s.event.noise_std)
            .sum::<f64>()
            / scenarios.len() as f64)
            .sqrt();
        ScenarioBank {
            scenarios,
            d_obs,
            d_clean,
            noise_std,
        }
    }

    /// A bank from prefabricated observation blocks, with no realized
    /// rupture scenarios behind them (`d_obs`/`d_clean` are `(Nd·Nt) × B`,
    /// scenario per column). This is how bank-scale consumers — the
    /// identification benches, stress tests, or an operator importing
    /// precomputed curves — get to 10³+ scenarios without paying `B` PDE
    /// forward solves. Everything except the rupture-aware accessors
    /// ([`Self::forecast_errors`] and the `scenarios` list) works as
    /// usual.
    pub fn synthetic(d_obs: DMatrix, d_clean: DMatrix, noise_std: f64) -> Self {
        assert_eq!(d_obs.nrows(), d_clean.nrows(), "synthetic: row mismatch");
        assert_eq!(d_obs.ncols(), d_clean.ncols(), "synthetic: col mismatch");
        assert!(
            d_clean.ncols() > 0,
            "scenario bank needs at least one column"
        );
        assert!(
            noise_std > 0.0 && noise_std.is_finite(),
            "synthetic: noise level must be positive"
        );
        ScenarioBank {
            scenarios: Vec::new(),
            d_obs,
            d_clean,
            noise_std,
        }
    }

    /// Number of scenarios `B` (columns of the observation blocks; for
    /// generated banks this equals the number of realized scenarios).
    pub fn len(&self) -> usize {
        self.d_clean.ncols()
    }

    /// True if the bank holds no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stacked observation block, `(Nd·Nt) × B`.
    pub fn observations(&self) -> &DMatrix {
        &self.d_obs
    }

    /// The stacked noise-free observation block, `(Nd·Nt) × B`. Row `i`
    /// holds every scenario's predicted datum at the same (sensor, time)
    /// slot, so sequential likelihood scoring of a partial stream reads
    /// contiguous rows.
    pub fn clean_observations(&self) -> &DMatrix {
        &self.d_clean
    }

    /// Representative noise level for calibrating the twin
    /// (RMS of the per-scenario noise levels).
    pub fn noise_std(&self) -> f64 {
        self.noise_std
    }

    /// Compress the bank's clean observation block to `rank` POD modes
    /// (randomized truncated SVD with default options — see
    /// [`crate::pod::PodBank`]): left modes `U`, mode-space coefficients
    /// `UᵀC`, and per-scenario residual energies. Mode-space
    /// identification then scores misfits in `r × B` instead of
    /// `(Nd·Nt) × B` per tick.
    pub fn compress(&self, rank: usize) -> PodBank {
        PodBank::from_clean_block(&self.d_clean, rank, SvdOptions::default())
    }

    /// Like [`Self::compress`], but picks the rank by an energy target:
    /// the smallest rank (within `max_rank`) whose modes capture at least
    /// `energy_frac` of the clean block's squared Frobenius energy.
    pub fn compress_energy(&self, energy_frac: f64, max_rank: usize) -> PodBank {
        let pod = self.compress(max_rank);
        let r = pod.rank_for_energy(energy_frac);
        if r == pod.rank() {
            pod
        } else {
            PodBank::from_clean_block(&self.d_clean, r, SvdOptions::default())
        }
    }

    /// Assimilate every scenario through the batched online path in one
    /// call: one multi-RHS `K⁻¹` solve + batched `Gᵀ` FFT pass for the
    /// inferences, one dense `Q · D` product for the forecasts.
    pub fn assimilate(&self, twin: &DigitalTwin) -> BankAssimilation {
        BankAssimilation {
            inference: twin.infer_batch(&self.d_obs),
            forecast: twin.forecast_batch(&self.d_obs),
        }
    }

    /// Per-scenario relative L2 forecast errors against each scenario's
    /// true QoI trace. Requires realized scenarios (not available on
    /// [`Self::synthetic`] banks, which have no ground truth).
    pub fn forecast_errors(&self, forecast: &ForecastBatch) -> Vec<f64> {
        assert_eq!(forecast.batch_size(), self.len(), "bank/forecast size");
        assert_eq!(
            self.scenarios.len(),
            self.len(),
            "forecast_errors needs realized scenarios (synthetic bank?)"
        );
        self.scenarios
            .iter()
            .enumerate()
            .map(|(j, s)| rel_l2(&forecast.q_map.col(j), &s.event.q_true))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase4;

    #[test]
    fn family_spans_distinct_scenarios() {
        let cfg = TwinConfig::tiny();
        let specs = ScenarioBank::family(&cfg, 8, 3);
        assert_eq!(specs.len(), 8);
        for w in specs.windows(2) {
            assert!(
                (w[0].hypo_frac - w[1].hypo_frac).abs() > 1e-6
                    || (w[0].peak_uplift - w[1].peak_uplift).abs() > 1e-6,
                "adjacent scenarios must differ"
            );
        }
        for s in &specs {
            assert!((0.15..=0.85).contains(&s.hypo_frac));
            assert!(s.peak_uplift >= 1.0 && s.peak_uplift <= 4.0);
            assert!(s.rise_time > 0.0);
            assert!(s.n_asperities >= 1);
        }
    }

    #[test]
    fn bank_assimilates_batch_consistent_with_single_rhs() {
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let specs = ScenarioBank::family(&cfg, 8, 42);
        let bank = ScenarioBank::generate(&cfg, &solver, &specs);
        assert_eq!(bank.len(), 8);
        assert_eq!(bank.observations().nrows(), solver.n_data());
        // Clean block mirrors each scenario's noise-free data.
        assert_eq!(bank.clean_observations().nrows(), solver.n_data());
        for (j, s) in bank.scenarios.iter().enumerate() {
            assert_eq!(bank.clean_observations().col(j), s.event.d_clean);
        }
        // Observation columns are genuinely distinct scenarios.
        for j in 1..bank.len() {
            let a = bank.observations().col(0);
            let b = bank.observations().col(j);
            assert!(rel_l2(&b, &a) > 1e-3, "columns 0 and {j} too similar");
        }
        drop(solver);

        let twin = DigitalTwin::offline(cfg, bank.noise_std());
        let out = bank.assimilate(&twin);
        assert_eq!(out.inference.batch_size(), 8);
        assert_eq!(out.forecast.batch_size(), 8);

        // The batched answers must match the single-RHS path per column.
        for j in 0..bank.len() {
            let d_j = bank.observations().col(j);
            let single = phase4::infer(&twin.phase1, &twin.phase2, &d_j);
            let batch_j = out.inference.scenario(j);
            let norm = single
                .m_map
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
                .sqrt()
                .max(1e-12);
            for (a, b) in batch_j.iter().zip(&single.m_map) {
                assert!((a - b).abs() < 1e-9 * norm, "scenario {j} m_map drift");
            }
        }

        // Forecasts actually track each scenario's own truth.
        let errs = bank.forecast_errors(&out.forecast);
        assert_eq!(errs.len(), 8);
        let good = errs.iter().filter(|e| **e < 0.6).count();
        assert!(
            good >= 6,
            "most scenarios should forecast well, errors {errs:?}"
        );
    }
}
