//! Streaming early warning: assimilation of a *growing* observation window.
//!
//! In operation, data arrive continuously: seconds after rupture onset only
//! a short pressure record exists, yet a warning decision cannot wait for
//! the full 420 s horizon. Because the data vector is ordered time-major,
//! the data-space Hessian of the problem restricted to the first `k`
//! observation times is exactly the leading `k·Nd × k·Nd` principal block
//! of the full `K` — and the leading principal block of a Cholesky factor
//! is the factor of the leading principal block. One offline factorization
//! therefore serves *every* window length, preserving the paper's
//! fraction-of-a-second online guarantee for each update as data stream in.
//!
//! For each window the posterior is exact (no approximation): it is the
//! Bayesian solution given the data observed so far, with the unobserved
//! future contributing nothing. Forecast uncertainty shrinks monotonically
//! as the window grows — the basis of the latency-vs-confidence trade
//! curve that an early-warning operator acts on.

use crate::phase1::Phase1;
use crate::phase2::Phase2;
use crate::phase3::Phase3;
use crate::phase4::{Forecast, ForecastBatch, Inference, InferenceBatch};
use rayon::prelude::*;
use std::time::Instant;
use tsunami_linalg::DMatrix;

/// Precomputed window-restricted forecast operators for a ladder of
/// observation windows (offline Phase 3 extension).
pub struct WindowedForecaster {
    /// Window lengths in observation steps, strictly increasing.
    pub windows: Vec<usize>,
    /// Per-window data-to-QoI maps `Q_w = B_w K_w⁻¹` (`Nq·Nt × k·Nd`).
    pub q_maps: Vec<DMatrix>,
    /// Per-window forecast standard deviations `√diag(Γpost(q; w))`.
    pub q_stds: Vec<Vec<f64>>,
    /// Number of sensors `Nd` (data entries per observation step).
    pub nd: usize,
}

impl WindowedForecaster {
    /// Precompute forecast operators for the given window lengths (in
    /// observation steps). Windows are clamped to the full horizon and
    /// must be positive.
    pub fn build(p1: &Phase1, p2: &Phase2, p3: &Phase3, windows: &[usize]) -> Self {
        let nd = p1.f.out_dim;
        let ws = normalize_windows(windows, p1.f.nt);
        let per_window: Vec<(DMatrix, Vec<f64>)> = ws
            .par_iter()
            .map(|&w| rung_operator(p2, p3, w * nd))
            .collect();
        let (q_maps, q_stds) = per_window.into_iter().unzip();
        WindowedForecaster {
            windows: ws,
            q_maps,
            q_stds,
            nd,
        }
    }

    /// Forecast from the first `windows[i]` observation steps of data.
    /// `d_window` must hold exactly `windows[i]·Nd` entries (the data seen
    /// so far, time-major). B=1 wrapper over [`Self::forecast_batch`].
    pub fn forecast(&self, i: usize, d_window: &[f64]) -> Forecast {
        let db = DMatrix::from_vec(d_window.len(), 1, d_window.to_vec());
        self.forecast_batch(i, &db).scenario(0)
    }

    /// Forecast a whole block of observation streams from the same window:
    /// `d_window` is `windows[i]·Nd × B`, one stream per column, and the
    /// result is one dense `Q_w · D` product instead of `B` matvecs. The
    /// posterior std is data-independent, so one vector serves every
    /// column.
    pub fn forecast_batch(&self, i: usize, d_window: &DMatrix) -> ForecastBatch {
        let t0 = Instant::now();
        let k = self.windows[i] * self.nd;
        assert_eq!(d_window.nrows(), k, "window {i} expects {k} data rows");
        let q_map = self.q_maps[i].matmul(d_window);
        ForecastBatch {
            q_map,
            q_std: self.q_stds[i].clone(),
            seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Index of the widest precomputed window not exceeding `steps`.
    /// Returns `None` if even the narrowest window needs more data.
    pub fn window_for(&self, steps: usize) -> Option<usize> {
        self.windows.iter().rposition(|&w| w <= steps)
    }
}

/// Clamp a requested window ladder to the horizon, sort it, and dedup it
/// — the shared normalization of [`WindowedForecaster::build`] and
/// [`crate::goal::GoalLadder::build`], so the two ladders built from the
/// same request always line up rung for rung.
pub(crate) fn normalize_windows(windows: &[usize], nt: usize) -> Vec<usize> {
    let mut ws: Vec<usize> = windows
        .iter()
        .map(|&w| {
            assert!(w > 0, "window length must be positive");
            w.min(nt)
        })
        .collect();
    ws.sort_unstable();
    ws.dedup();
    ws
}

/// One rung's dense data-to-QoI operator and posterior std: `T_w = B_w
/// K_w⁻¹` (`Nq·Nt × k`) via one panel-blocked leading solve (the factor
/// is walked once per panel, not once per QoI row), and `√diag(Γpost(q;
/// w))` with `Γpost(q; w) = A0 − B_w X`. Shared by the windowed
/// forecaster and the goal-oriented ladder so both derive bitwise the
/// same operator from the same offline phases.
pub(crate) fn rung_operator(p2: &Phase2, p3: &Phase3, k: usize) -> (DMatrix, Vec<f64>) {
    let nq = p3.b.nrows();
    let bw = DMatrix::from_fn(nq, k, |r, c| p3.b[(r, c)]);
    let x = p2.k_chol.solve_leading_multi(k, &bw.transpose());
    let mut gpq = p3.a0.clone();
    gpq.add_scaled(-1.0, &bw.matmul(&x));
    gpq.symmetrize();
    let std: Vec<f64> = gpq.diag().iter().map(|&v| v.max(0.0).sqrt()).collect();
    (x.transpose(), std)
}

/// Online inference from a truncated observation window: the exact
/// posterior mean given only the first `k_steps` observation times,
/// `m_map(w) = Gᵀ [K_w⁻¹ d_w ; 0]`. B=1 wrapper over
/// [`infer_window_batch`].
pub fn infer_window(p1: &Phase1, p2: &Phase2, d_window: &[f64], k_steps: usize) -> Inference {
    let db = DMatrix::from_vec(d_window.len(), 1, d_window.to_vec());
    let batch = infer_window_batch(p1, p2, &db, k_steps);
    Inference {
        m_map: batch.m_map.into_vec(),
        seconds: batch.seconds,
    }
}

/// Batched windowed inference: exact posterior means for a block of
/// observation streams all truncated to the same `k_steps` window
/// (`d_window` is `k_steps·Nd × B`, one stream per column). One
/// panel-blocked RHS-major leading solve walks the truncated factor once
/// per panel (each panel transposed across the
/// [`tsunami_linalg::RhsPanel`] layout boundary once, not per column),
/// and one batched FFT `Gᵀ` pass maps the zero-padded block back to
/// parameter space — instead of one factor traversal and one FFT dispatch
/// per stream.
pub fn infer_window_batch(
    p1: &Phase1,
    p2: &Phase2,
    d_window: &DMatrix,
    k_steps: usize,
) -> InferenceBatch {
    let t0 = Instant::now();
    let nd = p1.f.out_dim;
    let k = k_steps * nd;
    assert!(k_steps <= p1.f.nt, "window exceeds the time horizon");
    assert_eq!(d_window.nrows(), k, "expected {k} data rows");
    let b = d_window.ncols();
    let kd = p2.k_chol.solve_leading_multi(k, d_window);
    // Zero-pad to the full horizon: unobserved rows contribute nothing.
    // Row-major, so the leading k rows of the padded block are exactly the
    // solved block — one contiguous copy.
    let mut padded = DMatrix::zeros(p1.fast_f.nrows(), b);
    padded.as_mut_slice()[..k * b].copy_from_slice(kd.as_slice());
    let m_map = p2.fast_g.matmat_transpose(&padded);
    InferenceBatch {
        m_map,
        seconds: t0.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwinConfig;
    use crate::event::SyntheticEvent;
    use crate::metrics::rel_l2;
    use crate::stprior::SpaceTimePrior;
    use crate::twin::DigitalTwin;

    use tsunami_linalg::{Cholesky, LinearOperator};

    fn setup() -> DigitalTwin {
        DigitalTwin::offline(TwinConfig::tiny(), 0.03)
    }

    #[test]
    fn full_window_matches_phase4_exactly() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let d: Vec<f64> = (0..twin.n_data())
            .map(|i| (i as f64 * 0.21).sin())
            .collect();

        let inf_full = twin.infer(&d);
        let inf_win = infer_window(&twin.phase1, &twin.phase2, &d, nt);
        for (a, b) in inf_win.m_map.iter().zip(&inf_full.m_map) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1e-12));
        }

        let wf = WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &[nt]);
        let fc_full = twin.forecast(&d);
        let fc_win = wf.forecast(0, &d);
        for (a, b) in fc_win.q_map.iter().zip(&fc_full.q_map) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1e-12));
        }
        for (a, b) in fc_win.q_std.iter().zip(&fc_full.q_std) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1e-12));
        }
    }

    #[test]
    fn window_matches_dense_truncated_reference() {
        // m_map(w) must equal the dense Bayesian solution that only ever
        // saw the truncated data: Γ F_wᵀ (σ²I + F_w Γ F_wᵀ)⁻¹ d_w.
        let twin = setup();
        let nd = twin.solver.sensors.len();
        let nt = twin.solver.grid.nt_obs;
        let w_steps = nt / 2;
        let k = w_steps * nd;
        let d: Vec<f64> = (0..k).map(|i| (i as f64 * 0.37).cos()).collect();

        let inf = infer_window(&twin.phase1, &twin.phase2, &d, w_steps);

        let stp = SpaceTimePrior::new(twin.config.build_prior(), nt);
        let f_dense = twin.phase1.f.to_dense();
        let gamma = stp.to_dense();
        let fw = DMatrix::from_fn(k, f_dense.ncols(), |i, j| f_dense[(i, j)]);
        let fg = fw.matmul(&gamma);
        let mut kw = fg.matmul_nt(&fw);
        kw.shift_diag(twin.noise_std * twin.noise_std);
        kw.symmetrize();
        let ch = Cholesky::factor(&kw).unwrap();
        let kd = ch.solve(&d);
        let mut m_ref = vec![0.0; gamma.nrows()];
        fg.matvec_t(&kd, &mut m_ref);

        let err = rel_l2(&inf.m_map, &m_ref);
        assert!(err < 1e-8, "windowed inference mismatch: {err}");
    }

    #[test]
    fn uncertainty_shrinks_as_window_grows() {
        // Nested observation windows: posterior std is monotone
        // non-increasing in the window length, entry by entry.
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let windows: Vec<usize> = (1..=nt).collect();
        let wf = WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &windows);
        for i in 1..wf.windows.len() {
            for (s_wide, s_narrow) in wf.q_stds[i].iter().zip(&wf.q_stds[i - 1]) {
                assert!(
                    *s_wide <= s_narrow + 1e-9 * s_narrow.abs().max(1e-12),
                    "window {} should not be more uncertain than window {}",
                    wf.windows[i],
                    wf.windows[i - 1]
                );
            }
        }
    }

    #[test]
    fn forecast_skill_improves_with_data() {
        // On a synthetic rupture, the full-window forecast must beat the
        // narrowest window.
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let rupture = SyntheticEvent::default_rupture(&cfg);
        let ev = SyntheticEvent::generate(&cfg, &solver, &rupture, 77);
        let twin = DigitalTwin::offline(cfg, ev.noise_std);
        let nt = twin.solver.grid.nt_obs;
        let nd = twin.solver.sensors.len();
        let wf = WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &[1, nt]);

        let fc_narrow = wf.forecast(0, &ev.d_obs[..nd]);
        let fc_full = wf.forecast(1, &ev.d_obs);
        let e_narrow = rel_l2(&fc_narrow.q_map, &ev.q_true);
        let e_full = rel_l2(&fc_full.q_map, &ev.q_true);
        assert!(
            e_full < e_narrow,
            "more data should improve the forecast: {e_full} vs {e_narrow}"
        );
    }

    #[test]
    fn batched_window_path_matches_looped_single_rhs() {
        // forecast_batch / infer_window_batch must reproduce the looped
        // B=1 path column by column, for batch widths straddling the
        // Cholesky SOLVE_PANEL (32) and for a mid-ladder window.
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let nd = twin.solver.sensors.len();
        let w_steps = nt / 2;
        let wf = WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &[w_steps]);
        let k = w_steps * nd;
        for &bsz in &[1usize, 31, 33] {
            let d = DMatrix::from_fn(k, bsz, |i, j| ((i * 3 + 7 * j) as f64 * 0.19).sin());

            let fc_b = wf.forecast_batch(0, &d);
            assert_eq!(fc_b.batch_size(), bsz);
            let inf_b = infer_window_batch(&twin.phase1, &twin.phase2, &d, w_steps);
            assert_eq!(inf_b.batch_size(), bsz);

            for j in 0..bsz {
                let dj = d.col(j);
                let fc = wf.forecast(0, &dj);
                let fj = fc_b.scenario(j);
                for (a, b) in fj.q_map.iter().zip(&fc.q_map) {
                    assert!(
                        (a - b).abs() < 1e-11 * b.abs().max(1e-12),
                        "bsz={bsz} col {j}: q_map {a} vs {b}"
                    );
                }
                assert_eq!(fj.q_std, fc.q_std);

                let inf = infer_window(&twin.phase1, &twin.phase2, &dj, w_steps);
                let mj = inf_b.scenario(j);
                let norm = inf
                    .m_map
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>()
                    .sqrt()
                    .max(1e-12);
                for (a, b) in mj.iter().zip(&inf.m_map) {
                    assert!(
                        (a - b).abs() < 1e-11 * norm,
                        "bsz={bsz} col {j}: m_map drift"
                    );
                }
            }
        }
    }

    #[test]
    fn full_window_batch_matches_phase4_batch() {
        // At the full horizon the windowed batch path must agree with the
        // unwindowed Phase-4 batch path.
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let n_d = twin.n_data();
        let bsz = 5;
        let d = DMatrix::from_fn(n_d, bsz, |i, j| ((i + 11 * j) as f64 * 0.29).cos());
        let inf_w = infer_window_batch(&twin.phase1, &twin.phase2, &d, nt);
        let inf_full = twin.infer_batch(&d);
        for i in 0..inf_full.m_map.nrows() {
            for j in 0..bsz {
                let (a, b) = (inf_w.m_map[(i, j)], inf_full.m_map[(i, j)]);
                assert!((a - b).abs() < 1e-12 * b.abs().max(1e-12));
            }
        }
    }

    #[test]
    fn window_for_selects_widest_feasible() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let wf =
            WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &[2, 1, nt, 2]);
        // Sorted + deduped.
        assert_eq!(wf.windows, vec![1, 2, nt]);
        assert_eq!(wf.window_for(0), None);
        assert_eq!(wf.window_for(1), Some(0));
        assert_eq!(wf.window_for(2), Some(1));
        assert_eq!(wf.window_for(nt + 5), Some(2));
    }

    #[test]
    #[should_panic(expected = "window exceeds the time horizon")]
    fn overlong_window_rejected() {
        let twin = setup();
        let nt = twin.solver.grid.nt_obs;
        let nd = twin.solver.sensors.len();
        let d = vec![0.0; (nt + 1) * nd];
        let _ = infer_window(&twin.phase1, &twin.phase2, &d, nt + 1);
    }
}
