//! Space-time prior: block-diagonal in time with identical Matérn spatial
//! blocks (exactly the paper's `Γprior` structure, §IV).

use rand::rngs::StdRng;
use tsunami_linalg::LinearOperator;
use tsunami_prior::MaternPrior;

/// `Γprior = I_{Nt} ⊗ Γ_s` acting on time-major space-time vectors.
pub struct SpaceTimePrior {
    /// Spatial block.
    pub spatial: MaternPrior,
    /// Number of time blocks.
    pub nt: usize,
}

impl SpaceTimePrior {
    /// Wrap a spatial prior.
    pub fn new(spatial: MaternPrior, nt: usize) -> Self {
        SpaceTimePrior { spatial, nt }
    }

    /// Space-time dimension.
    pub fn n(&self) -> usize {
        self.spatial.n() * self.nt
    }

    /// Covariance action per time block.
    pub fn apply_cov(&self, x: &[f64], out: &mut [f64]) {
        let nm = self.spatial.n();
        assert_eq!(x.len(), self.n());
        assert_eq!(out.len(), self.n());
        for t in 0..self.nt {
            self.spatial
                .apply_cov(&x[t * nm..(t + 1) * nm], &mut out[t * nm..(t + 1) * nm]);
        }
    }

    /// Square-root covariance action per time block (`Γ^{1/2}`).
    pub fn apply_sqrt(&self, x: &[f64], out: &mut [f64]) {
        let nm = self.spatial.n();
        for t in 0..self.nt {
            self.spatial
                .apply_sqrt(&x[t * nm..(t + 1) * nm], &mut out[t * nm..(t + 1) * nm]);
        }
    }

    /// Precision action per time block.
    pub fn apply_inv(&self, x: &[f64], out: &mut [f64]) {
        let nm = self.spatial.n();
        for t in 0..self.nt {
            self.spatial
                .apply_inv(&x[t * nm..(t + 1) * nm], &mut out[t * nm..(t + 1) * nm]);
        }
    }

    /// Draw a zero-mean space-time sample.
    pub fn sample(&self, rng: &mut StdRng) -> Vec<f64> {
        let nm = self.spatial.n();
        let mut out = vec![0.0; self.n()];
        for t in 0..self.nt {
            let s = self.spatial.sample(rng);
            out[t * nm..(t + 1) * nm].copy_from_slice(&s);
        }
        out
    }
}

impl LinearOperator for SpaceTimePrior {
    fn nrows(&self) -> usize {
        self.n()
    }
    fn ncols(&self) -> usize {
        self.n()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.apply_cov(x, y);
    }
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        self.apply_cov(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stp() -> SpaceTimePrior {
        SpaceTimePrior::new(
            MaternPrior::with_hyperparameters(6, 5, 30e3, 25e3, 8e3, 1.5),
            4,
        )
    }

    #[test]
    fn block_diagonal_no_time_coupling() {
        let p = stp();
        let nm = p.spatial.n();
        let mut x = vec![0.0; p.n()];
        x[2 * nm + 7] = 1.0; // impulse in time block 2
        let mut y = vec![0.0; p.n()];
        p.apply_cov(&x, &mut y);
        for t in [0usize, 1, 3] {
            for i in 0..nm {
                assert_eq!(y[t * nm + i], 0.0, "time coupling at block {t}");
            }
        }
        assert!(y[2 * nm + 7] > 0.0);
    }

    #[test]
    fn cov_inv_roundtrip() {
        let p = stp();
        let x: Vec<f64> = (0..p.n()).map(|i| (i as f64 * 0.13).sin()).collect();
        let mut cx = vec![0.0; p.n()];
        p.apply_cov(&x, &mut cx);
        let mut back = vec![0.0; p.n()];
        p.apply_inv(&cx, &mut back);
        for (a, b) in back.iter().zip(&x) {
            assert!((a - b).abs() < 1e-8 * b.abs().max(1.0));
        }
    }
}
