//! Bayesian model evidence: real-time discrimination of tsunamigenic
//! events and empirical-Bayes noise calibration.
//!
//! The paper's motivation (§III-A) includes the 2024 Cape Mendocino
//! earthquake, "which did not cause a tsunami, despite five million people
//! receiving evacuation alerts." The Gaussian machinery already built for
//! inversion gives the principled fix for such false alarms at negligible
//! online cost: the **marginal likelihood** (evidence) of the observed
//! data under the tsunami-source model,
//!
//! ```text
//!   log p(d | source model) = −½ dᵀK⁻¹d − ½ log det K − (n/2) log 2π,
//! ```
//!
//! where `K = σ²I + FΓFᵀ` is exactly the data-space Hessian of Phase 2 —
//! its Cholesky factor (hence `log det K`) is already in hand, so the
//! online cost is one triangular solve. Comparing against the null model
//! `d ∼ N(0, σ²I)` (sensor noise, no seafloor source) yields a Bayes
//! factor that separates real events from noise in real time.
//!
//! The same quantity, maximized over the noise level, gives an
//! empirical-Bayes calibration of `σ` when the instrument noise floor is
//! uncertain ([`calibrate_noise`]).

use crate::phase1::Phase1;
use crate::phase2::Phase2;
use tsunami_prior::MaternPrior;

const LOG_2PI: f64 = 1.8378770664093453;

/// Log evidence of the data under the source model,
/// `log N(d; 0, K)` with `K` the Phase 2 data-space Hessian.
pub fn log_evidence(p2: &Phase2, d: &[f64]) -> f64 {
    let n = p2.k_chol.dim();
    assert_eq!(d.len(), n, "data dimension");
    // dᵀK⁻¹d = ‖L⁻¹d‖² — forward substitution only.
    let mut y = d.to_vec();
    p2.k_chol.solve_lower_in_place(&mut y);
    let quad: f64 = y.iter().map(|v| v * v).sum();
    -0.5 * (quad + p2.k_chol.log_det() + n as f64 * LOG_2PI)
}

/// Log likelihood of the data under the null (no-source) model
/// `d ∼ N(0, σ²I)`.
pub fn log_null(d: &[f64], noise_std: f64) -> f64 {
    assert!(noise_std > 0.0, "noise level must be positive");
    let n = d.len() as f64;
    let quad: f64 = d.iter().map(|v| v * v).sum::<f64>() / (noise_std * noise_std);
    -0.5 * (quad + 2.0 * n * noise_std.ln() + n * LOG_2PI)
}

/// Log Bayes factor of "seafloor source" vs "sensor noise only". Positive
/// values favor a real event; `> ~5` is decisive on the usual evidence
/// scales.
pub fn log_bayes_factor(p2: &Phase2, d: &[f64], noise_std: f64) -> f64 {
    log_evidence(p2, d) - log_null(d, noise_std)
}

/// Empirical-Bayes noise calibration: evaluate the evidence on a grid of
/// candidate noise levels and return `(best_sigma, log_evidences)`.
///
/// Each candidate costs one Phase 2 rebuild (`K(σ) = P + σ²I` re-factored)
/// — an *offline* procedure run when the instrument noise floor is being
/// established, not per event. Calibrate on *quiescent* (no-event)
/// records: during an event the prior-predictive covariance can dominate
/// every data direction, leaving σ only weakly identifiable.
pub fn calibrate_noise(
    p1: &Phase1,
    prior: &MaternPrior,
    d: &[f64],
    candidates: &[f64],
) -> (f64, Vec<f64>) {
    assert!(
        !candidates.is_empty(),
        "need at least one candidate noise level"
    );
    let timers = tsunami_hpc::TimerRegistry::new();
    let evidences: Vec<f64> = candidates
        .iter()
        .map(|&sigma| {
            assert!(sigma > 0.0, "noise candidates must be positive");
            let p2 = Phase2::build(p1, prior, sigma, &timers);
            log_evidence(&p2, d)
        })
        .collect();
    let best = evidences
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("evidence values are finite"))
        .map(|(i, _)| candidates[i])
        .expect("non-empty candidates");
    (best, evidences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TwinConfig;
    use crate::event::SyntheticEvent;
    use crate::twin::DigitalTwin;
    use tsunami_linalg::random::{fill_randn, seeded_rng};

    #[test]
    fn evidence_matches_dense_gaussian_density() {
        // log N(d; 0, K) computed via the factor must match the dense
        // formula assembled by hand on the tiny problem.
        let twin = DigitalTwin::offline(TwinConfig::tiny(), 0.04);
        let n = twin.n_data();
        let d: Vec<f64> = (0..n).map(|i| (i as f64 * 0.19).sin() * 0.01).collect();
        let le = log_evidence(&twin.phase2, &d);
        // Dense reference: quad via full solve, logdet via the factor.
        let kd = twin.phase2.k_solve(&d);
        let quad: f64 = d.iter().zip(&kd).map(|(a, b)| a * b).sum();
        let reference = -0.5 * (quad + twin.phase2.k_chol.log_det() + n as f64 * LOG_2PI);
        assert!(
            (le - reference).abs() < 1e-8 * reference.abs().max(1.0),
            "{le} vs {reference}"
        );
    }

    #[test]
    fn real_event_beats_null_and_noise_does_not() {
        let cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let rupture = SyntheticEvent::default_rupture(&cfg);
        let ev = SyntheticEvent::generate(&cfg, &solver, &rupture, 2024);
        let twin = DigitalTwin::offline(cfg, ev.noise_std);

        // A genuine rupture: decisive evidence for the source model.
        let bf_event = log_bayes_factor(&twin.phase2, &ev.d_obs, ev.noise_std);
        assert!(bf_event > 5.0, "real event not detected: log BF {bf_event}");

        // Pure sensor noise at the modeled level: the Occam penalty in
        // log det K must push the Bayes factor non-positive (the source
        // model cannot win on data it merely *can* explain).
        let mut rng = seeded_rng(77);
        let mut noise = vec![0.0; twin.n_data()];
        fill_randn(&mut rng, &mut noise);
        for v in noise.iter_mut() {
            *v *= ev.noise_std;
        }
        let bf_noise = log_bayes_factor(&twin.phase2, &noise, ev.noise_std);
        assert!(
            bf_noise < bf_event - 5.0,
            "no separation: noise {bf_noise} vs event {bf_event}"
        );
        assert!(
            bf_noise < 1.0,
            "false alarm: log BF {bf_noise} on pure noise"
        );
    }

    #[test]
    fn calibration_recovers_the_noise_floor_on_quiescent_data() {
        // Operational practice: the noise floor is established on
        // quiescent (no-event) records. On event data the prior-predictive
        // covariance P can dominate every direction and σ becomes weakly
        // identifiable; on quiescent data the directions P explains weakly
        // pin σ at the true level.
        let mut cfg = TwinConfig::tiny();
        let solver = cfg.build_solver();
        let timers = tsunami_hpc::TimerRegistry::new();
        let p1 = crate::phase1::Phase1::build(&solver, &timers);
        // Use the event's noise scale as the floor to recover, and a prior
        // weak enough that the prior-predictive covariance does not drown
        // the noise in every data direction (σ is unidentifiable when
        // λ_min(FΓFᵀ) ≫ σ² — the regime of the strong default prior).
        let rupture = SyntheticEvent::default_rupture(&cfg);
        let ev = SyntheticEvent::generate(&cfg, &solver, &rupture, 31);
        let truth = ev.noise_std;
        cfg.prior_sigma = 1e-4;
        let prior = cfg.build_prior();
        let mut rng = tsunami_linalg::random::seeded_rng(8);
        let mut quiet = vec![0.0; p1.fast_f.nrows()];
        fill_randn(&mut rng, &mut quiet);
        for v in quiet.iter_mut() {
            *v *= truth;
        }
        let candidates: Vec<f64> = (-2..=2).map(|k| truth * 10f64.powi(k)).collect();
        let (best, evidences) = calibrate_noise(&p1, &prior, &quiet, &candidates);
        assert_eq!(evidences.len(), candidates.len());
        let best_ratio = best / truth;
        assert!(
            (0.1..=10.0).contains(&best_ratio),
            "calibration picked {best} vs truth {truth} ({evidences:?})"
        );
    }

    #[test]
    fn null_likelihood_is_a_proper_density_maximum() {
        // For fixed data, log_null is maximized at σ² = ‖d‖²/n (the MLE);
        // check the analytic optimum beats its neighbors.
        let d: Vec<f64> = (0..50).map(|i| ((i as f64) * 0.7).sin() * 0.3).collect();
        let mle = (d.iter().map(|v| v * v).sum::<f64>() / d.len() as f64).sqrt();
        let at_mle = log_null(&d, mle);
        assert!(at_mle > log_null(&d, mle * 1.3));
        assert!(at_mle > log_null(&d, mle / 1.3));
    }

    #[test]
    #[should_panic(expected = "noise level must be positive")]
    fn null_rejects_nonpositive_sigma() {
        let _ = log_null(&[1.0], 0.0);
    }
}
