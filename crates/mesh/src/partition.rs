//! Domain decomposition onto a 3D processor grid (Table II of the paper).
//!
//! The paper runs on processor grids of shape `PX × PY × 4` (4 GPUs per
//! node), e.g. `5 × 17 × 4` on 85 El Capitan nodes up to `80 × 136 × 4` on
//! 10,880 nodes, chosen "adaptively tuned according to the problem sizes and
//! total number of GPUs ... to reduce communication costs". [`RankGrid::auto`]
//! reproduces that tuner: pick the factorization minimizing the estimated
//! halo surface for the given element grid.

/// A `px × py × pz` processor grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankGrid {
    /// Ranks across the margin (x).
    pub px: usize,
    /// Ranks along strike (y).
    pub py: usize,
    /// Ranks through the water column (z); fixed to GPUs-per-node in the
    /// paper's runs.
    pub pz: usize,
}

impl RankGrid {
    /// Total rank count.
    pub fn n_ranks(&self) -> usize {
        self.px * self.py * self.pz
    }

    /// Choose the grid for `n_ranks` total ranks over an
    /// `ex × ey × ez`-element mesh, minimizing total halo surface (the sum
    /// over cuts of the cut-plane areas). `pz_fixed` pins the z-extent of
    /// the grid (the paper uses the 4 GPUs of a node vertically).
    pub fn auto(
        n_ranks: usize,
        ex: usize,
        ey: usize,
        ez: usize,
        pz_fixed: Option<usize>,
    ) -> RankGrid {
        assert!(n_ranks >= 1);
        let mut best: Option<(f64, RankGrid)> = None;
        let pz_candidates: Vec<usize> = match pz_fixed {
            Some(pz) => {
                assert!(n_ranks.is_multiple_of(pz), "pz must divide rank count");
                vec![pz]
            }
            None => divisors(n_ranks),
        };
        for pz in pz_candidates {
            let rest = n_ranks / pz;
            for px in divisors(rest) {
                let py = rest / px;
                if px > ex || py > ey || pz > ez.max(1) {
                    continue;
                }
                let g = RankGrid { px, py, pz };
                let cost = halo_surface(&g, ex, ey, ez);
                if best.is_none_or(|(c, _)| cost < c) {
                    best = Some((cost, g));
                }
            }
        }
        best.map(|(_, g)| g).unwrap_or(RankGrid {
            px: 1,
            py: n_ranks,
            pz: 1,
        })
    }
}

/// Total internal cut surface (in element faces) of a grid decomposition —
/// the communication volume proxy the tuner minimizes.
pub fn halo_surface(g: &RankGrid, ex: usize, ey: usize, ez: usize) -> f64 {
    let cuts_x = (g.px - 1) as f64 * (ey * ez) as f64;
    let cuts_y = (g.py - 1) as f64 * (ex * ez) as f64;
    let cuts_z = (g.pz - 1) as f64 * (ex * ey) as f64;
    cuts_x + cuts_y + cuts_z
}

fn divisors(n: usize) -> Vec<usize> {
    let mut d = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            d.push(i);
            if i != n / i {
                d.push(n / i);
            }
        }
        i += 1;
    }
    d.sort_unstable();
    d
}

/// The element box owned by one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankBox {
    /// `[start, end)` element range in x.
    pub x: (usize, usize),
    /// `[start, end)` element range in y.
    pub y: (usize, usize),
    /// `[start, end)` element range in z.
    pub z: (usize, usize),
}

impl RankBox {
    /// Local element count.
    pub fn n_elems(&self) -> usize {
        (self.x.1 - self.x.0) * (self.y.1 - self.y.0) * (self.z.1 - self.z.0)
    }

    /// Number of element faces on the box surface (communication proxy).
    pub fn surface_faces(&self) -> usize {
        let (dx, dy, dz) = (
            self.x.1 - self.x.0,
            self.y.1 - self.y.0,
            self.z.1 - self.z.0,
        );
        2 * (dx * dy + dy * dz + dx * dz)
    }
}

/// Box decomposition of an element grid over a [`RankGrid`].
pub struct Partition {
    /// The processor grid.
    pub grid: RankGrid,
    /// Element grid dimensions.
    pub elems: (usize, usize, usize),
    /// Per-rank boxes, rank-major `r = (kz·py + jy)·px + ix`.
    pub boxes: Vec<RankBox>,
}

impl Partition {
    /// Split an `ex × ey × ez` element grid across `grid`, near-evenly
    /// (remainder elements go to the low-index ranks, matching the usual
    /// block distribution).
    pub fn new(grid: RankGrid, ex: usize, ey: usize, ez: usize) -> Self {
        let boxes = (0..grid.n_ranks())
            .map(|r| {
                let ix = r % grid.px;
                let jy = (r / grid.px) % grid.py;
                let kz = r / (grid.px * grid.py);
                RankBox {
                    x: split_range(ex, grid.px, ix),
                    y: split_range(ey, grid.py, jy),
                    z: split_range(ez, grid.pz, kz),
                }
            })
            .collect();
        Partition {
            grid,
            elems: (ex, ey, ez),
            boxes,
        }
    }

    /// Load imbalance: `max local elems / mean local elems`.
    pub fn imbalance(&self) -> f64 {
        let max = self.boxes.iter().map(RankBox::n_elems).max().unwrap_or(0) as f64;
        let total: usize = self.boxes.iter().map(RankBox::n_elems).sum();
        let mean = total as f64 / self.boxes.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Bytes exchanged per halo swap for one field with `dofs_per_face`
    /// unknowns on an element face, by the busiest rank.
    pub fn max_halo_bytes(&self, dofs_per_face: usize) -> usize {
        self.boxes
            .iter()
            .enumerate()
            .map(|(r, b)| self.rank_halo_faces(r, b) * dofs_per_face * std::mem::size_of::<f64>())
            .max()
            .unwrap_or(0)
    }

    /// Count of faces rank `r` shares with neighbors (not domain boundary).
    fn rank_halo_faces(&self, r: usize, b: &RankBox) -> usize {
        let ix = r % self.grid.px;
        let jy = (r / self.grid.px) % self.grid.py;
        let kz = r / (self.grid.px * self.grid.py);
        let (dx, dy, dz) = (b.x.1 - b.x.0, b.y.1 - b.y.0, b.z.1 - b.z.0);
        let mut faces = 0;
        if ix > 0 {
            faces += dy * dz;
        }
        if ix + 1 < self.grid.px {
            faces += dy * dz;
        }
        if jy > 0 {
            faces += dx * dz;
        }
        if jy + 1 < self.grid.py {
            faces += dx * dz;
        }
        if kz > 0 {
            faces += dx * dy;
        }
        if kz + 1 < self.grid.pz {
            faces += dx * dy;
        }
        faces
    }
}

fn split_range(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    let base = n / parts;
    let rem = n % parts;
    let start = idx * base + idx.min(rem);
    let len = base + usize::from(idx < rem);
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_range_covers_exactly() {
        for &(n, p) in &[(10usize, 3usize), (7, 7), (100, 8), (5, 1)] {
            let mut covered = 0;
            let mut prev_end = 0;
            for i in 0..p {
                let (s, e) = split_range(n, p, i);
                assert_eq!(s, prev_end);
                covered += e - s;
                prev_end = e;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn partition_covers_all_elements_once() {
        let g = RankGrid {
            px: 3,
            py: 2,
            pz: 2,
        };
        let p = Partition::new(g, 10, 7, 5);
        let total: usize = p.boxes.iter().map(RankBox::n_elems).sum();
        assert_eq!(total, 10 * 7 * 5);
        assert_eq!(p.boxes.len(), 12);
    }

    #[test]
    fn imbalance_near_one_for_divisible() {
        let g = RankGrid {
            px: 2,
            py: 2,
            pz: 2,
        };
        let p = Partition::new(g, 8, 8, 8);
        assert!((p.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_prefers_cube_like_cuts() {
        // For a cubic mesh, an 8-rank grid should be 2x2x2, not 8x1x1.
        let g = RankGrid::auto(8, 64, 64, 64, None);
        assert_eq!(
            g,
            RankGrid {
                px: 2,
                py: 2,
                pz: 2
            }
        );
    }

    #[test]
    fn auto_respects_fixed_pz() {
        let g = RankGrid::auto(340, 512, 1728, 16, Some(4));
        assert_eq!(g.pz, 4);
        assert_eq!(g.n_ranks(), 340);
        // With a y-elongated mesh the tuner should put more ranks along y.
        assert!(g.py >= g.px, "expected py >= px, got {g:?}");
    }

    #[test]
    fn auto_reproduces_el_capitan_grid_shape() {
        // Table II: 340 GPUs on a margin-shaped mesh → 5 × 17 × 4.
        let g = RankGrid::auto(340, 640, 2176, 16, Some(4));
        assert_eq!(
            g,
            RankGrid {
                px: 5,
                py: 17,
                pz: 4
            }
        );
    }

    #[test]
    fn halo_bytes_positive_for_multirank() {
        let g = RankGrid {
            px: 2,
            py: 1,
            pz: 1,
        };
        let p = Partition::new(g, 8, 4, 4);
        assert!(p.max_halo_bytes(25) > 0);
    }

    #[test]
    fn single_rank_has_no_halo() {
        let g = RankGrid {
            px: 1,
            py: 1,
            pz: 1,
        };
        let p = Partition::new(g, 8, 4, 4);
        assert_eq!(p.max_halo_bytes(25), 0);
    }
}
