//! Bathymetry-adapted hexahedral meshing of the Cascadia subduction zone.
//!
//! The paper meshes the CSZ ocean volume with a 3D multi-block hexahedral
//! mesh whose vertical coordinate follows the seafloor (Fig 1d, "bathymetry-
//! adapted meshing"), at 300 m nominal resolution. GEBCO bathymetry is not
//! shippable here, so [`bathymetry::CascadiaBathymetry`] provides an analytic
//! shelf–slope–trench profile with along-strike variation that produces the
//! same meshing behaviour (vertically graded columns, shallow coastal cells,
//! deep trench cells).
//!
//! The mesh is logically Cartesian — `nx × ny × nz` elements over the
//! horizontal footprint — with terrain-following z-coordinates, which is
//! what makes the point-location needed by sensor/QoI observation operators
//! exact and cheap (no Newton iterations).

// Numeric kernels use index loops that mirror the tensor/math indices
// of the discretizations; enumerate()-style rewrites obscure the formulas.
#![allow(clippy::needless_range_loop)]

pub mod bathymetry;
pub mod hex;
pub mod partition;

pub use bathymetry::{Bathymetry, CascadiaBathymetry, FlatBathymetry};
pub use hex::{BoundaryTag, HexMesh};
pub use partition::{Partition, RankGrid};
