//! Terrain-following structured hexahedral mesh.
//!
//! Elements are logically `(i, j, k)` with `i` fastest; within an element,
//! local vertices follow the same tensor convention (`x` fastest, then `y`,
//! then `z`), matching the tensor-product basis ordering in `tsunami-fem`.
//! The reference element is `[-1, 1]³`.

use crate::bathymetry::Bathymetry;

/// Which part of `∂Ω` a boundary face belongs to (eq. (1) of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BoundaryTag {
    /// Sea surface `∂Ωs` (z = 0): free-surface gravity condition.
    Surface,
    /// Seafloor `∂Ωb`: parameter (seafloor velocity) forcing.
    Bottom,
    /// Lateral boundaries `∂Ωa`: absorbing impedance condition.
    Absorbing,
}

/// A boundary face of the mesh: element, local face id (0..6 in -x,+x,-y,
/// +y,-z,+z order), and tag.
#[derive(Clone, Copy, Debug)]
pub struct BoundaryFace {
    /// Owning element index.
    pub elem: usize,
    /// Local face: 0=-x, 1=+x, 2=-y, 3=+y, 4=-z (bottom), 5=+z (top).
    pub local_face: usize,
    /// Part of the boundary.
    pub tag: BoundaryTag,
}

/// Structured `nx × ny × nz` hexahedral mesh with terrain-following z.
pub struct HexMesh {
    /// Elements across the margin (x).
    pub nx: usize,
    /// Elements along strike (y).
    pub ny: usize,
    /// Elements through the water column (z).
    pub nz: usize,
    /// Horizontal extents (m).
    pub lx: f64,
    /// Along-strike extent (m).
    pub ly: f64,
    /// Vertex coordinates, `(nx+1)(ny+1)(nz+1)` entries, x-fastest ordering.
    pub verts: Vec<[f64; 3]>,
    /// Boundary faces with tags.
    pub boundary: Vec<BoundaryFace>,
}

impl HexMesh {
    /// Build a terrain-following mesh over `[0,lx] × [0,ly]`, with `nz`
    /// layers from the seafloor `z = −depth(x,y)` to the surface `z = 0`.
    /// # Example
    ///
    /// ```
    /// use tsunami_mesh::{FlatBathymetry, HexMesh};
    /// let mesh = HexMesh::terrain_following(4, 3, 2, 8000.0, 6000.0, &FlatBathymetry { depth: 500.0 });
    /// assert_eq!(mesh.n_elems(), 4 * 3 * 2);
    /// // The bottom of the column sits on the seafloor.
    /// let p = mesh.map_point(mesh.elem_id(0, 0, 0), 0.0, 0.0, -1.0);
    /// assert!((p[2] + 500.0).abs() < 1e-9);
    /// ```
    pub fn terrain_following(
        nx: usize,
        ny: usize,
        nz: usize,
        lx: f64,
        ly: f64,
        bath: &dyn Bathymetry,
    ) -> Self {
        assert!(nx >= 1 && ny >= 1 && nz >= 1);
        let (nvx, nvy, nvz) = (nx + 1, ny + 1, nz + 1);
        let mut verts = Vec::with_capacity(nvx * nvy * nvz);
        for k in 0..nvz {
            let zeta = k as f64 / nz as f64; // 0 at bottom, 1 at surface
            for j in 0..nvy {
                let y = ly * j as f64 / ny as f64;
                for i in 0..nvx {
                    let x = lx * i as f64 / nx as f64;
                    let d = bath.depth(x, y);
                    verts.push([x, y, -d * (1.0 - zeta)]);
                }
            }
        }
        let mut boundary = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let e = (k * ny + j) * nx + i;
                    if i == 0 {
                        boundary.push(BoundaryFace {
                            elem: e,
                            local_face: 0,
                            tag: BoundaryTag::Absorbing,
                        });
                    }
                    if i == nx - 1 {
                        boundary.push(BoundaryFace {
                            elem: e,
                            local_face: 1,
                            tag: BoundaryTag::Absorbing,
                        });
                    }
                    if j == 0 {
                        boundary.push(BoundaryFace {
                            elem: e,
                            local_face: 2,
                            tag: BoundaryTag::Absorbing,
                        });
                    }
                    if j == ny - 1 {
                        boundary.push(BoundaryFace {
                            elem: e,
                            local_face: 3,
                            tag: BoundaryTag::Absorbing,
                        });
                    }
                    if k == 0 {
                        boundary.push(BoundaryFace {
                            elem: e,
                            local_face: 4,
                            tag: BoundaryTag::Bottom,
                        });
                    }
                    if k == nz - 1 {
                        boundary.push(BoundaryFace {
                            elem: e,
                            local_face: 5,
                            tag: BoundaryTag::Surface,
                        });
                    }
                }
            }
        }
        HexMesh {
            nx,
            ny,
            nz,
            lx,
            ly,
            verts,
            boundary,
        }
    }

    /// Total element count.
    pub fn n_elems(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Total vertex count.
    pub fn n_verts(&self) -> usize {
        (self.nx + 1) * (self.ny + 1) * (self.nz + 1)
    }

    /// Element index from logical coordinates.
    #[inline]
    pub fn elem_id(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        (k * self.ny + j) * self.nx + i
    }

    /// Logical coordinates of an element.
    #[inline]
    pub fn elem_ijk(&self, e: usize) -> (usize, usize, usize) {
        let i = e % self.nx;
        let j = (e / self.nx) % self.ny;
        let k = e / (self.nx * self.ny);
        (i, j, k)
    }

    /// Vertex index from logical coordinates.
    #[inline]
    pub fn vert_id(&self, i: usize, j: usize, k: usize) -> usize {
        (k * (self.ny + 1) + j) * (self.nx + 1) + i
    }

    /// The 8 vertex ids of an element, tensor order (x fastest, then y, z).
    pub fn elem_vertices(&self, e: usize) -> [usize; 8] {
        let (i, j, k) = self.elem_ijk(e);
        [
            self.vert_id(i, j, k),
            self.vert_id(i + 1, j, k),
            self.vert_id(i, j + 1, k),
            self.vert_id(i + 1, j + 1, k),
            self.vert_id(i, j, k + 1),
            self.vert_id(i + 1, j, k + 1),
            self.vert_id(i, j + 1, k + 1),
            self.vert_id(i + 1, j + 1, k + 1),
        ]
    }

    /// The 8 vertex coordinates of an element.
    pub fn elem_coords(&self, e: usize) -> [[f64; 3]; 8] {
        let vids = self.elem_vertices(e);
        let mut out = [[0.0; 3]; 8];
        for (o, &v) in out.iter_mut().zip(&vids) {
            *o = self.verts[v];
        }
        out
    }

    /// Trilinear geometric map: physical coordinates of reference point
    /// `(xi, eta, zeta) ∈ [-1,1]³` inside element `e`.
    pub fn map_point(&self, e: usize, xi: f64, eta: f64, zeta: f64) -> [f64; 3] {
        let coords = self.elem_coords(e);
        let sx = [0.5 * (1.0 - xi), 0.5 * (1.0 + xi)];
        let sy = [0.5 * (1.0 - eta), 0.5 * (1.0 + eta)];
        let sz = [0.5 * (1.0 - zeta), 0.5 * (1.0 + zeta)];
        let mut p = [0.0; 3];
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    let w = sx[di] * sy[dj] * sz[dk];
                    let v = coords[dk * 4 + dj * 2 + di];
                    p[0] += w * v[0];
                    p[1] += w * v[1];
                    p[2] += w * v[2];
                }
            }
        }
        p
    }

    /// Jacobian `∂x/∂ξ` of the trilinear map at a reference point.
    pub fn jacobian(&self, e: usize, xi: f64, eta: f64, zeta: f64) -> [[f64; 3]; 3] {
        let coords = self.elem_coords(e);
        let sx = [0.5 * (1.0 - xi), 0.5 * (1.0 + xi)];
        let sy = [0.5 * (1.0 - eta), 0.5 * (1.0 + eta)];
        let sz = [0.5 * (1.0 - zeta), 0.5 * (1.0 + zeta)];
        let dx = [-0.5, 0.5];
        let mut jac = [[0.0; 3]; 3]; // jac[a][b] = dx_a/dxi_b
        for dk in 0..2 {
            for dj in 0..2 {
                for di in 0..2 {
                    let v = coords[dk * 4 + dj * 2 + di];
                    let gw = [
                        dx[di] * sy[dj] * sz[dk],
                        sx[di] * dx[dj] * sz[dk],
                        sx[di] * sy[dj] * dx[dk],
                    ];
                    for a in 0..3 {
                        for b in 0..3 {
                            jac[a][b] += v[a] * gw[b];
                        }
                    }
                }
            }
        }
        jac
    }

    /// Locate the element containing physical point `(x, y, z)` and its
    /// reference coordinates. Exploits the terrain-following structure:
    /// `(x, y)` determine the column directly; `z` is linear in `ζ` within
    /// an element at fixed `(ξ, η)`.
    ///
    /// Returns `None` if the point lies outside the mesh (beyond a small
    /// tolerance).
    pub fn locate_point(&self, x: f64, y: f64, z: f64) -> Option<(usize, [f64; 3])> {
        let hx = self.lx / self.nx as f64;
        let hy = self.ly / self.ny as f64;
        let fx = x / hx;
        let fy = y / hy;
        let tol = 1e-9;
        if fx < -tol || fx > self.nx as f64 + tol || fy < -tol || fy > self.ny as f64 + tol {
            return None;
        }
        let i = (fx.floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let j = (fy.floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        let xi = 2.0 * (fx - i as f64) - 1.0;
        let eta = 2.0 * (fy - j as f64) - 1.0;
        // Scan the column for the layer containing z.
        for k in 0..self.nz {
            let e = self.elem_id(i, j, k);
            let zb = self.face_z(e, xi, eta, false);
            let zt = self.face_z(e, xi, eta, true);
            let lo = zb.min(zt) - tol * (zt - zb).abs().max(1.0);
            let hi = zb.max(zt) + tol * (zt - zb).abs().max(1.0);
            if z >= lo && z <= hi {
                let zeta = if (zt - zb).abs() < 1e-30 {
                    0.0
                } else {
                    2.0 * (z - zb) / (zt - zb) - 1.0
                };
                return Some((e, [xi, eta, zeta.clamp(-1.0, 1.0)]));
            }
        }
        None
    }

    /// z-coordinate of the bottom (`top = false`) or top face of element `e`
    /// at horizontal reference position `(ξ, η)` (bilinear interpolation).
    fn face_z(&self, e: usize, xi: f64, eta: f64, top: bool) -> f64 {
        let coords = self.elem_coords(e);
        let off = if top { 4 } else { 0 };
        let sx = [0.5 * (1.0 - xi), 0.5 * (1.0 + xi)];
        let sy = [0.5 * (1.0 - eta), 0.5 * (1.0 + eta)];
        let mut z = 0.0;
        for dj in 0..2 {
            for di in 0..2 {
                z += sx[di] * sy[dj] * coords[off + dj * 2 + di][2];
            }
        }
        z
    }

    /// Nominal smallest element edge length — the CFL-relevant mesh scale.
    pub fn min_edge_length(&self) -> f64 {
        let hx = self.lx / self.nx as f64;
        let hy = self.ly / self.ny as f64;
        // Vertical extents vary; scan columns at vertices.
        let mut min_hz = f64::INFINITY;
        for j in 0..=self.ny {
            for i in 0..=self.nx {
                let zb = self.verts[self.vert_id(i, j, 0)][2];
                let hz = -zb / self.nz as f64;
                if hz > 0.0 {
                    min_hz = min_hz.min(hz);
                }
            }
        }
        hx.min(hy).min(min_hz)
    }

    /// Boundary faces with a given tag.
    pub fn faces_with_tag(&self, tag: BoundaryTag) -> impl Iterator<Item = &BoundaryFace> {
        self.boundary.iter().filter(move |f| f.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bathymetry::{CascadiaBathymetry, FlatBathymetry};

    fn small_mesh() -> HexMesh {
        HexMesh::terrain_following(4, 3, 2, 4000.0, 3000.0, &FlatBathymetry { depth: 1000.0 })
    }

    #[test]
    fn counts() {
        let m = small_mesh();
        assert_eq!(m.n_elems(), 24);
        assert_eq!(m.n_verts(), 5 * 4 * 3);
        assert_eq!(m.verts.len(), m.n_verts());
    }

    #[test]
    fn elem_ijk_roundtrip() {
        let m = small_mesh();
        for e in 0..m.n_elems() {
            let (i, j, k) = m.elem_ijk(e);
            assert_eq!(m.elem_id(i, j, k), e);
        }
    }

    #[test]
    fn surface_at_zero_bottom_at_depth() {
        let m = small_mesh();
        for j in 0..=3 {
            for i in 0..=4 {
                assert_eq!(m.verts[m.vert_id(i, j, 2)][2], 0.0);
                assert_eq!(m.verts[m.vert_id(i, j, 0)][2], -1000.0);
            }
        }
    }

    #[test]
    fn boundary_face_census() {
        let m = small_mesh();
        let surf = m.faces_with_tag(BoundaryTag::Surface).count();
        let bot = m.faces_with_tag(BoundaryTag::Bottom).count();
        let abs = m.faces_with_tag(BoundaryTag::Absorbing).count();
        assert_eq!(surf, 12); // nx*ny
        assert_eq!(bot, 12);
        assert_eq!(abs, 2 * (3 * 2) + 2 * (4 * 2)); // sides
    }

    #[test]
    fn map_point_center_and_corners() {
        let m = small_mesh();
        let e = m.elem_id(1, 1, 0);
        let p = m.map_point(e, -1.0, -1.0, -1.0);
        assert!((p[0] - 1000.0).abs() < 1e-9);
        assert!((p[1] - 1000.0).abs() < 1e-9);
        assert!((p[2] + 1000.0).abs() < 1e-9);
        let c = m.map_point(e, 0.0, 0.0, 0.0);
        assert!((c[0] - 1500.0).abs() < 1e-9);
        assert!((c[2] + 750.0).abs() < 1e-9);
    }

    #[test]
    fn jacobian_of_flat_mesh_is_diagonal() {
        let m = small_mesh();
        let jac = m.jacobian(0, 0.3, -0.2, 0.7);
        assert!((jac[0][0] - 500.0).abs() < 1e-9); // hx/2
        assert!((jac[1][1] - 500.0).abs() < 1e-9); // hy/2
        assert!((jac[2][2] - 250.0).abs() < 1e-9); // hz/2
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert!(jac[a][b].abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn locate_point_roundtrip_flat() {
        let m = small_mesh();
        let (e, r) = m.locate_point(1234.0, 567.0, -333.0).unwrap();
        let p = m.map_point(e, r[0], r[1], r[2]);
        assert!((p[0] - 1234.0).abs() < 1e-6);
        assert!((p[1] - 567.0).abs() < 1e-6);
        assert!((p[2] + 333.0).abs() < 1e-6);
    }

    #[test]
    fn locate_point_roundtrip_terrain() {
        let bath = CascadiaBathymetry::standard(250e3, 1000e3);
        let m = HexMesh::terrain_following(16, 32, 4, 250e3, 1000e3, &bath);
        for &(x, y, frac) in &[(31e3, 47e3, 0.3), (200e3, 900e3, 0.9), (125e3, 500e3, 0.01)] {
            let d = bath.depth(x, y);
            let z = -d * frac;
            let (e, r) = m.locate_point(x, y, z).expect("point should be inside");
            let p = m.map_point(e, r[0], r[1], r[2]);
            assert!((p[0] - x).abs() < 1e-5, "x mismatch");
            assert!((p[1] - y).abs() < 1e-5, "y mismatch");
            assert!((p[2] - z).abs() < 1.0, "z mismatch: {} vs {z}", p[2]);
        }
    }

    #[test]
    fn locate_point_outside_returns_none() {
        let m = small_mesh();
        assert!(m.locate_point(-100.0, 0.0, -10.0).is_none());
        assert!(m.locate_point(1e9, 0.0, -10.0).is_none());
        assert!(
            m.locate_point(100.0, 100.0, 100.0).is_none(),
            "above surface"
        );
    }

    #[test]
    fn min_edge_positive() {
        let m = small_mesh();
        assert!(m.min_edge_length() > 0.0);
    }

    #[test]
    fn terrain_mesh_follows_bathymetry() {
        let bath = CascadiaBathymetry::standard(250e3, 1000e3);
        let m = HexMesh::terrain_following(10, 20, 3, 250e3, 1000e3, &bath);
        // Bottom vertices must sit at -depth.
        for j in 0..=20usize {
            for i in 0..=10usize {
                let v = m.verts[m.vert_id(i, j, 0)];
                let d = bath.depth(v[0], v[1]);
                assert!((v[2] + d).abs() < 1e-9);
            }
        }
    }
}
