//! Analytic bathymetry models standing in for GEBCO gridded data.
//!
//! Coordinates: `x` is cross-margin (0 at the trench-side/offshore boundary,
//! increasing toward the coast), `y` is along-strike (south → north), both in
//! meters. Depth is returned positive, in meters.

/// A seafloor depth field `depth(x, y) > 0`.
pub trait Bathymetry: Sync {
    /// Water-column depth at horizontal position `(x, y)`, meters, positive.
    fn depth(&self, x: f64, y: f64) -> f64;
}

/// Constant-depth ocean — the analytic test case (dispersion relations,
/// travel-time checks are exact here).
#[derive(Clone, Debug)]
pub struct FlatBathymetry {
    /// Uniform depth in meters.
    pub depth: f64,
}

impl Bathymetry for FlatBathymetry {
    fn depth(&self, _x: f64, _y: f64) -> f64 {
        self.depth
    }
}

/// Cascadia-like margin profile: abyssal plain and trench offshore, a
/// continental slope, and a shallow shelf toward the coast, with smooth
/// along-strike undulation mimicking the Explorer/Juan de Fuca/Gorda
/// segmentation.
#[derive(Clone, Debug)]
pub struct CascadiaBathymetry {
    /// Cross-margin extent (m); the shelf edge sits at `0.75 · lx`.
    pub lx: f64,
    /// Along-strike extent (m).
    pub ly: f64,
    /// Depth of the abyssal plain near the trench (m), e.g. 2800.
    pub deep: f64,
    /// Depth over the continental shelf (m), e.g. 200.
    pub shallow: f64,
    /// Amplitude of along-strike depth undulation (m), e.g. 150.
    pub undulation: f64,
}

impl CascadiaBathymetry {
    /// The default margin used by the scaled experiments: a 1000 km-long,
    /// 250 km-wide strip, 2.8 km deep offshore shoaling to 150 m at the
    /// shelf, with three along-strike segments.
    pub fn standard(lx: f64, ly: f64) -> Self {
        CascadiaBathymetry {
            lx,
            ly,
            deep: 2800.0,
            shallow: 150.0,
            undulation: 150.0,
        }
    }
}

impl Bathymetry for CascadiaBathymetry {
    fn depth(&self, x: f64, y: f64) -> f64 {
        let xi = (x / self.lx).clamp(0.0, 1.0);
        let eta = (y / self.ly).clamp(0.0, 1.0);
        // Smooth ramp from `deep` to `shallow`, slope centered at xi = 0.7.
        let s = 0.5 * (1.0 + ((xi - 0.7) / 0.08).tanh());
        let base = self.deep * (1.0 - s) + self.shallow * s;
        // Gentle trench deepening right at the offshore edge.
        let trench = 0.15 * self.deep * (-(xi / 0.05).powi(2)).exp();
        // Along-strike segmentation (three lobes like Explorer/JdF/Gorda).
        let lobes = self.undulation * (3.0 * std::f64::consts::PI * eta).sin() * (1.0 - s);
        (base + trench + lobes).max(0.2 * self.shallow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_flat() {
        let b = FlatBathymetry { depth: 2500.0 };
        assert_eq!(b.depth(0.0, 0.0), 2500.0);
        assert_eq!(b.depth(1e6, -3e5), 2500.0);
    }

    #[test]
    fn cascadia_deep_offshore_shallow_onshore() {
        let b = CascadiaBathymetry::standard(250e3, 1000e3);
        let offshore = b.depth(10e3, 500e3);
        let nearshore = b.depth(245e3, 500e3);
        assert!(offshore > 2000.0, "offshore {offshore}");
        assert!(nearshore < 400.0, "nearshore {nearshore}");
        assert!(offshore > nearshore);
    }

    #[test]
    fn cascadia_always_positive() {
        let b = CascadiaBathymetry::standard(250e3, 1000e3);
        for i in 0..50 {
            for j in 0..50 {
                let d = b.depth(i as f64 * 5e3, j as f64 * 20e3);
                assert!(d > 0.0, "non-positive depth at ({i},{j}): {d}");
            }
        }
    }

    #[test]
    fn cascadia_varies_along_strike_offshore() {
        let b = CascadiaBathymetry::standard(250e3, 1000e3);
        let d1 = b.depth(50e3, 160e3);
        let d2 = b.depth(50e3, 500e3);
        assert!(
            (d1 - d2).abs() > 1.0,
            "no along-strike variation: {d1} vs {d2}"
        );
    }
}
