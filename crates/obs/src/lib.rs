//! Telemetry spine: lock-free metrics registry, log2 latency histograms,
//! Prometheus/JSON exposition, and bounded audit rings.
//!
//! The paper grounds its real-time claim in instrumentation — Table I
//! wall-clock sections and the Fig 6 percentage breakdown — and the
//! goal-oriented companion (arXiv:2501.14911) argues the online phase
//! must be *provably* cheap. A service that runs for months needs the
//! same rigor continuously: this crate is the std-only subsystem the
//! rest of the workspace records into.
//!
//! - [`Counter`] / [`Gauge`] / [`Histogram`]: recording is a handful of
//!   relaxed atomic ops — no locks on any hot path. Histograms use fixed
//!   log2 buckets ([`metric::bucket_index`]), are exactly mergeable, and
//!   report p50/p95/p99 exact within bucket resolution.
//! - [`Registry`]: hierarchical dot-separated names (see
//!   [`registry`] for the scheme), insertion-ordered with an indexed
//!   map, rendered as Prometheus-style text
//!   ([`Registry::render_prometheus`]) or a JSON snapshot
//!   ([`Registry::render_json`]). One process-wide instance lives at
//!   [`global`]; local registries back scoped reports (e.g.
//!   `tsunami_hpc::TimerRegistry`).
//! - [`AuditRing`]: a bounded decision trail with eviction accounting —
//!   the "why did this session flip to Warning at t=…" record.
//! - **Kill switch**: `OBS=off` (or `0`/`false`) disables all
//!   instrumentation ([`enabled`]); instrumented code gates its clock
//!   reads and records on it, so the off path costs one relaxed atomic
//!   load per tick. [`set_enabled`] overrides in-process (bench A/B),
//!   mirroring the rayon shim's `RAYON_POOL` / `set_bulk_mode` pattern.

pub mod audit;
pub mod metric;
pub mod registry;
pub mod render;

pub use audit::AuditRing;
pub use metric::{bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{validate_exposition, Metric, MetricValue, Registry};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide registry every subsystem records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Resolved observability switch: 0 = unresolved, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether instrumentation is on. An explicit [`set_enabled`] wins, then
/// the `OBS` environment variable (`off`, `0`, or `false` disables), then
/// the on-by-default. Resolution happens once and sticks; the steady-state
/// cost of this call is one relaxed atomic load.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let resolved = match std::env::var("OBS").as_deref() {
                Ok("off") | Ok("0") | Ok("false") => 2,
                _ => 1,
            };
            let _ = ENABLED.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
            enabled()
        }
    }
}

/// Override the observability switch in-process (bench/test hook; see
/// [`enabled`]).
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// A lap clock that compiles down to nothing when observability is off:
/// started with `on = false` it never reads the system clock and every
/// lap returns 0.
pub struct Stopwatch {
    last: Option<Instant>,
}

impl Stopwatch {
    /// Start (or don't: `on = false` makes every lap free and zero).
    pub fn start(on: bool) -> Self {
        Stopwatch {
            last: on.then(Instant::now),
        }
    }

    /// Nanoseconds since the previous lap (or start), advancing the lap
    /// point. 0 when the stopwatch is off.
    pub fn lap(&mut self) -> u64 {
        match &mut self.last {
            Some(last) => {
                let now = Instant::now();
                let ns = now.duration_since(*last).as_nanos().min(u64::MAX as u128) as u64;
                *last = now;
                ns
            }
            None => 0,
        }
    }

    /// True when the stopwatch is actually reading the clock.
    pub fn is_on(&self) -> bool {
        self.last.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let c = global().counter("obs.test.shared");
        let before = c.get();
        global().counter("obs.test.shared").inc();
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn set_enabled_overrides() {
        // Tests share the process; restore the resolved state afterwards.
        let was = enabled();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(was);
    }

    #[test]
    fn stopwatch_off_is_free_and_zero() {
        let mut sw = Stopwatch::start(false);
        assert!(!sw.is_on());
        assert_eq!(sw.lap(), 0);
        let mut on = Stopwatch::start(true);
        std::hint::black_box((0..1000).sum::<u64>());
        let ns = on.lap();
        let ns2 = on.lap();
        // Laps advance: the second lap times only the interval after the
        // first, not the cumulative time.
        assert!(ns > 0);
        assert!(ns2 < ns + 1_000_000_000, "laps must not accumulate");
    }
}
