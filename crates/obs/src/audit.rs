//! Bounded audit ring: the decision trail a long-running service keeps.
//!
//! An [`AuditRing`] holds the last `capacity` records of some decision
//! type (warning-level transitions, config flips, …), evicting oldest
//! first and remembering *how many* records were ever evicted, so a query
//! can tell "the log is complete" apart from "the log is a suffix".

use std::collections::VecDeque;

/// A bounded FIFO of audit records with eviction accounting.
#[derive(Clone, Debug)]
pub struct AuditRing<T> {
    buf: VecDeque<T>,
    capacity: usize,
    evicted: u64,
}

impl<T> AuditRing<T> {
    /// A ring holding at most `capacity` records (`capacity ≥ 1`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "audit ring capacity must be at least 1");
        AuditRing {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            evicted: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, record: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(record);
    }

    /// Records currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Number of retained records (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was evicted
    /// and then cleared).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records evicted over the ring's lifetime; `evicted() == 0` means
    /// the retained records are the *complete* history.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Sequence number of the oldest retained record (records are
    /// numbered from 0 in arrival order).
    pub fn first_seq(&self) -> u64 {
        self.evicted
    }

    /// Total records ever pushed.
    pub fn total(&self) -> u64 {
        self.evicted + self.buf.len() as u64
    }

    /// Drop every retained record (the eviction total keeps counting).
    pub fn clear(&mut self) {
        self.evicted += self.buf.len() as u64;
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_with_eviction_accounting() {
        let mut ring = AuditRing::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.evicted(), 2);
        assert_eq!(ring.first_seq(), 2);
        assert_eq!(ring.total(), 5);
        let kept: Vec<i32> = ring.iter().copied().collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest records must be evicted first");
    }

    #[test]
    fn clear_counts_as_eviction() {
        let mut ring = AuditRing::new(2);
        ring.push("a");
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.total(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_is_rejected() {
        let _ = AuditRing::<u8>::new(0);
    }
}
