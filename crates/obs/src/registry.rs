//! The metrics registry: hierarchical names → shared metric handles,
//! with Prometheus-style text exposition and a JSON snapshot.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a mutex and an
//! indexed-map lookup, and is meant to happen once per metric — callers
//! keep the returned [`Arc`] handle and record through it lock-free
//! thereafter. Entries keep **insertion order**, so reports and
//! expositions are stable and a Table-I-style ordered breakdown can be
//! built on top (see `tsunami_hpc::TimerRegistry`).
//!
//! ## Naming scheme
//!
//! Names are hierarchical, dot-separated, lowercase:
//! `<subsystem>.<object>.<aspect>[.<detail>]` — e.g.
//! `stream.tick.identify` (per-stage tick latency histogram),
//! `stream.tick.rung.3` (per-rung assimilation latency),
//! `pool.handoffs` (worker-pool gauge), `bench.emitted` (counter).
//! The Prometheus renderer mangles `.` (and any other character outside
//! `[a-zA-Z0-9_:]`) to `_`, so `stream.tick.identify` is exposed as
//! `stream_tick_identify`.

use crate::metric::{bucket_bounds, Counter, Gauge, Histogram, HistogramSnapshot};
use crate::render;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One registered metric (shared handle).
#[derive(Clone, Debug)]
pub enum Metric {
    /// Monotone event count.
    Counter(Arc<Counter>),
    /// Instantaneous value.
    Gauge(Arc<Gauge>),
    /// Log2 latency/size distribution.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Point-in-time value of one registered metric.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Full histogram state (boxed: a snapshot is 65 buckets wide, far
    /// larger than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Default)]
struct Inner {
    /// Insertion-ordered entries; `index` maps name → position.
    entries: Vec<(String, Metric)>,
    index: HashMap<String, usize>,
}

/// An insertion-ordered, indexed metrics registry (see the
/// [module docs](self)).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// A fresh, empty registry. Most callers want the process-wide
    /// [`crate::global`] instance instead; local registries exist for
    /// scoped reports (e.g. a per-run timer table).
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("obs: registry mutex poisoned");
        if let Some(&i) = inner.index.get(name) {
            return inner.entries[i].1.clone();
        }
        let metric = make();
        let i = inner.entries.len();
        inner.entries.push((name.to_string(), metric.clone()));
        inner.index.insert(name.to_string(), i);
        metric
    }

    /// Get or register the counter `name`. Panics if `name` is already
    /// registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("obs: {name} is registered as a {}", other.kind()),
        }
    }

    /// Get or register the gauge `name`. Panics if `name` is already
    /// registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("obs: {name} is registered as a {}", other.kind()),
        }
    }

    /// Get or register the histogram `name`. Panics if `name` is already
    /// registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("obs: {name} is registered as a {}", other.kind()),
        }
    }

    /// The metric registered under `name`, if any.
    pub fn get(&self, name: &str) -> Option<Metric> {
        let inner = self.inner.lock().expect("obs: registry mutex poisoned");
        inner.index.get(name).map(|&i| inner.entries[i].1.clone())
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("obs: registry mutex poisoned")
            .entries
            .len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time values of every metric, in insertion order.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let inner = self.inner.lock().expect("obs: registry mutex poisoned");
        inner
            .entries
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name.clone(), v)
            })
            .collect()
    }

    /// Zero every registered metric's value, keeping the registrations
    /// (and every outstanding handle) intact.
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("obs: registry mutex poisoned");
        for (_, m) in &inner.entries {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Drop every registration. Outstanding handles keep working but are
    /// no longer rendered; a later `counter`/`histogram` call under the
    /// same name registers a *fresh* metric.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("obs: registry mutex poisoned");
        inner.entries.clear();
        inner.index.clear();
    }

    /// Render the whole registry as Prometheus-style text exposition:
    /// a `# TYPE` comment per metric, `name value` samples for counters
    /// and gauges, and cumulative `name_bucket{le="…"}` / `name_sum` /
    /// `name_count` samples for histograms. Empty histogram buckets are
    /// skipped (the cumulative counts stay correct); the `+Inf` bucket is
    /// always present.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            let pname = mangle(&name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {pname} histogram\n"));
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        cum += c;
                        if c > 0 {
                            let (_, hi) = bucket_bounds(i);
                            out.push_str(&format!("{pname}_bucket{{le=\"{hi}\"}} {cum}\n"));
                        }
                    }
                    out.push_str(&format!("{pname}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{pname}_sum {}\n", h.sum));
                    out.push_str(&format!("{pname}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// Render the whole registry as one JSON object:
    /// `{"name": value, …}` for counters/gauges and
    /// `{"name": {"count", "sum", "mean", "p50", "p95", "p99",
    /// "buckets": [[le, n], …]}}` for histograms (non-empty buckets
    /// only). Insertion-ordered, machine-readable — the snapshot format
    /// the bench trajectory and dashboards consume.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (k, (name, value)) in self.snapshot().into_iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&render::json_string(&name));
            out.push(':');
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&v.to_string());
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        render::json_f64(h.mean()),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    ));
                    let mut first = true;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!("[{},{c}]", bucket_bounds(i).1));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push('}');
        out
    }
}

/// Mangle a hierarchical metric name into the Prometheus charset:
/// every character outside `[a-zA-Z0-9_:]` becomes `_`, and a leading
/// digit is prefixed with `_`.
pub fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Validate a Prometheus-style text exposition: every non-empty line must
/// be either a `#`-comment or a `name[{labels}] value` sample with a
/// well-formed metric name and a numeric value. Returns the number of
/// sample (non-comment) lines, or a description of the first malformed
/// line. A CI smoke gate: an exposition that renders but does not parse
/// is worse than none.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return Err(format!("line {}: no value separator: {line:?}", lineno + 1)),
        };
        let name = match name_part.split_once('{') {
            Some((n, labels)) => {
                if !labels.ends_with('}') {
                    return Err(format!("line {}: unclosed label set: {line:?}", lineno + 1));
                }
                let body = &labels[..labels.len() - 1];
                for pair in body.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return Err(format!("line {}: bad label {pair:?}", lineno + 1));
                    };
                    if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(format!("line {}: bad label {pair:?}", lineno + 1));
                    }
                }
                n
            }
            None => name_part,
        };
        let valid_name = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !valid_name {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        if value_part != "+Inf" && value_part.parse::<f64>().is_err() {
            return Err(format!("line {}: bad value {value_part:?}", lineno + 1));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_insertion_ordered() {
        let reg = Registry::new();
        let a = reg.counter("a.first");
        reg.gauge("b.second");
        reg.histogram("c.third");
        let a2 = reg.counter("a.first");
        a.add(3);
        assert_eq!(a2.get(), 3, "same name must return the same handle");
        let names: Vec<String> = reg.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "b.second", "c.third"]);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.histogram("x");
    }

    #[test]
    fn exposition_renders_and_validates() {
        let reg = Registry::new();
        reg.counter("stream.ticks").add(5);
        reg.gauge("pool.workers").set(4);
        let h = reg.histogram("stream.tick.identify");
        for v in [3u64, 900, 901, 40_000] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE stream_ticks counter"));
        assert!(text.contains("stream_ticks 5"));
        assert!(text.contains("stream_tick_identify_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("stream_tick_identify_count 4"));
        let samples = validate_exposition(&text).expect("exposition must parse");
        assert!(samples >= 7, "expected at least 7 sample lines");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_exposition("just_a_name_no_value").is_err());
        assert!(validate_exposition("9leading_digit 1").is_err());
        assert!(validate_exposition("ok{le=\"unclosed} 1").is_err());
        assert!(validate_exposition("name 1.5e3\n# comment\n").is_ok());
    }

    #[test]
    fn json_snapshot_is_well_formed_enough() {
        let reg = Registry::new();
        reg.counter("a").add(1);
        reg.histogram("h").record(1023);
        let json = reg.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\":1"));
        assert!(json.contains("\"p50\":1023"));
        assert!(json.contains("[1023,1]"));
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let reg = Registry::new();
        let c = reg.counter("n");
        c.add(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(reg.len(), 1);
    }
}
