//! The three metric primitives: counters, gauges, and log2 histograms.
//!
//! All three record through plain atomics — no locks anywhere on the
//! recording path — so hot loops (a streaming tick, a pool worker, a
//! timer in a parallel solve) can hammer a shared handle from any number
//! of threads. Reads take unsynchronized snapshots: each field is
//! atomically consistent, the combination is not (a histogram snapshot
//! taken mid-record may briefly show `count` ahead of a bucket), which is
//! the standard exposition-scrape contract.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count (lock-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` events.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one event.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero (registry `clear` support; not part of the normal
    /// monotone contract).
    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins instantaneous measurement (lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the current value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (peak tracking).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    pub(crate) fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for the value 0 plus one per bit
/// length of a `u64` (bucket `i` holds values whose bit length is `i`,
/// i.e. `v ∈ [2^(i−1), 2^i − 1]`).
pub const HIST_BUCKETS: usize = 65;

/// Fixed-bucket log2 histogram on atomics (lock-free, mergeable).
///
/// Values (typically latencies in nanoseconds) land in one of
/// [`HIST_BUCKETS`] power-of-two buckets, so recording is a handful of
/// relaxed `fetch_add`s, memory is constant, and two histograms merge by
/// bucketwise addition (exactly associative — merge order can never
/// change a count). Quantiles are exact *within bucket resolution*: the
/// reported p50/p95/p99 is the upper bound of the bucket containing the
/// nearest-rank element, so the true quantile lies within a factor of 2
/// below the reported figure.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of all recorded values (saturating on overflow in practice:
    /// 2^64 ns ≈ 584 years of accumulated latency).
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in: 0 for the value 0, otherwise the
/// value's bit length (`⌊log2 v⌋ + 1`).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `[lo, hi]` value range of bucket `i` (see [`bucket_index`]).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < HIST_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        (0, 0)
    } else if i == 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one value (lock-free: three relaxed atomic adds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.record(ns);
    }

    /// Point-in-time copy of the bucket counts (see the module docs for
    /// the consistency contract under concurrent recording).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`] / [`bucket_bounds`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Bucketwise merge — exactly associative and commutative, so
    /// per-shard or per-process histograms can be combined in any order
    /// without changing a single count.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            sum: self.sum + other.sum,
            count: self.count + other.count,
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) by the nearest-rank convention,
    /// reported as the **upper bound** of the bucket holding the ranked
    /// element — exact within bucket resolution: the true quantile is
    /// guaranteed to lie inside the reported bucket. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    }

    /// Exact arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_u64_range() {
        let mut expected_lo = 0u64;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} does not continue the range");
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "buckets must cover exactly the u64 range");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::new();
        g.set(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_sum_count_and_mean() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1006);
        assert!((s.mean() - 251.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }
}
