//! Minimal JSON building blocks (std-only, no serde in this workspace).
//!
//! Just enough to emit machine-readable snapshots and bench records:
//! escaped strings and finite-safe floats. Not a JSON *parser* — the
//! emitters in this workspace produce line-oriented records a real
//! toolchain ingests elsewhere.

/// Render `s` as a JSON string literal (quotes included), escaping the
/// characters JSON requires (`"` `\` and control characters).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{}` on f64 round-trips (shortest representation).
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn floats_are_finite_safe() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
