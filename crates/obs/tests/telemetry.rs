//! Integration tests for the telemetry spine: histogram quantiles
//! against a sorted-vector oracle at awkward bucket boundaries, merge
//! associativity, and lossless concurrent recording through the
//! workspace thread pool (run CI-side under `RAYON_NUM_THREADS=4`).

use rayon::prelude::*;
use std::sync::Arc;
use tsunami_obs::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, Registry};

/// The oracle: nearest-rank quantile on the sorted raw values, reported
/// as the upper bound of the bucket that value lands in — exactly the
/// resolution contract [`HistogramSnapshot::quantile`] promises.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    bucket_bounds(bucket_index(sorted[rank - 1])).1
}

#[test]
fn quantiles_match_the_sorted_vec_oracle_at_awkward_boundaries() {
    // Values deliberately straddling every kind of bucket edge: zero,
    // exact powers of two, the off-by-ones on both sides, duplicates,
    // and a far-tail outlier.
    let mut values: Vec<u64> = vec![
        0,
        0,
        1,
        1,
        2,
        3,
        4,
        4,
        7,
        8,
        9,
        15,
        16,
        17,
        31,
        32,
        33,
        63,
        64,
        65,
        127,
        128,
        129,
        1023,
        1024,
        1025,
        65_535,
        65_536,
        1 << 40,
    ];
    // A skewed bulk so the interesting quantiles move across buckets.
    values.extend((0..57).map(|_| 100u64));

    let h = Histogram::new();
    for &v in &values {
        h.record(v);
    }
    let snap = h.snapshot();
    values.sort_unstable();

    assert_eq!(snap.count, values.len() as u64);
    assert_eq!(snap.sum, values.iter().sum::<u64>());
    for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
        assert_eq!(
            snap.quantile(q),
            oracle_quantile(&values, q),
            "quantile({q}) disagrees with the sorted-vec oracle"
        );
    }
}

#[test]
fn quantile_oracle_agreement_on_each_pure_boundary_population() {
    // Populations sitting entirely on one boundary value: the quantile
    // must be that value's bucket upper bound at every q.
    for v in [0u64, 1, 2, 255, 256, 257, (1 << 20) - 1, 1 << 20] {
        let h = Histogram::new();
        for _ in 0..13 {
            h.record(v);
        }
        let snap = h.snapshot();
        let want = bucket_bounds(bucket_index(v)).1;
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(snap.quantile(q), want, "v={v} q={q}");
        }
        // The reported bound is never below the recorded value and never
        // a full factor of 2 above it (the log2 resolution contract).
        assert!(want >= v);
        if v > 0 {
            assert!(want < v.saturating_mul(2));
        }
    }
}

#[test]
fn merge_is_associative_and_commutative_and_matches_single_recording() {
    // Three shards with interleaved deterministic values.
    let values: Vec<u64> = (0..300)
        .map(|i| (i * i * 2654435761u64) % (1 << 30))
        .collect();
    let shards: Vec<HistogramSnapshot> = (0..3)
        .map(|s| {
            let h = Histogram::new();
            for v in values.iter().skip(s).step_by(3) {
                h.record(*v);
            }
            h.snapshot()
        })
        .collect();
    let (a, b, c) = (&shards[0], &shards[1], &shards[2]);

    let left = a.merge(b).merge(c);
    let right = a.merge(&b.merge(c));
    let rotated = c.merge(a).merge(b);
    assert_eq!(left, right, "merge must be associative");
    assert_eq!(left, rotated, "merge must be commutative");

    let all = Histogram::new();
    for &v in &values {
        all.record(v);
    }
    assert_eq!(
        left,
        all.snapshot(),
        "sharded merge must equal single-histogram recording"
    );
}

#[test]
fn concurrent_recording_through_the_pool_is_lossless() {
    // Many pool workers hammering the same registry handles: every
    // record must land (counts conserved), and the registry must stay
    // readable mid-flight. CI runs this under RAYON_NUM_THREADS=4 in
    // both pool modes.
    let reg = Registry::new();
    let hist = reg.histogram("pool.latency");
    let hits = reg.counter("pool.hits");

    let per_task = 1000u64;
    let tasks: Vec<u64> = (0..16).collect();
    tasks.par_iter().for_each(|&t| {
        let h = Arc::clone(&hist);
        let c = Arc::clone(&hits);
        for i in 0..per_task {
            h.record(t * per_task + i);
            c.inc();
        }
        // Concurrent scrape while other workers are still recording:
        // must parse-render without panicking.
        let _ = reg.render_prometheus();
    });

    let total = per_task * tasks.len() as u64;
    assert_eq!(hits.get(), total);
    let snap = hist.snapshot();
    assert_eq!(snap.count, total);
    assert_eq!(snap.buckets.iter().sum::<u64>(), total);
    let expected_sum: u64 = (0..total).sum();
    assert_eq!(snap.sum, expected_sum);
    assert!(tsunami_obs::validate_exposition(&reg.render_prometheus()).is_ok());
}
