//! The matrix-free linear operator abstraction.
//!
//! Everything in the inversion framework — the p2o map `F`, the prior
//! covariance `Γprior`, the Hessian, the Toeplitz FFT machinery — acts on
//! vectors without ever being materialized. This trait is the common
//! currency between those pieces and the Krylov solvers.

use crate::matrix::DMatrix;

/// A real linear map `R^{ncols} → R^{nrows}` with optional transpose action.
pub trait LinearOperator: Sync {
    /// Output dimension.
    fn nrows(&self) -> usize;
    /// Input dimension.
    fn ncols(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// `y = Aᵀ x`. Default panics; operators used in adjoint position must
    /// override.
    fn apply_transpose(&self, _x: &[f64], _y: &mut [f64]) {
        panic!("apply_transpose not implemented for this operator");
    }

    /// Convenience allocating apply.
    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows()];
        self.apply(x, &mut y);
        y
    }

    /// Materialize the operator column-by-column into a dense matrix.
    /// Exponential cost in the dimension — for tests and small dense cross
    /// checks only.
    fn to_dense(&self) -> DMatrix {
        let (m, n) = (self.nrows(), self.ncols());
        let mut a = DMatrix::zeros(m, n);
        let mut e = vec![0.0; n];
        let mut col = vec![0.0; m];
        for j in 0..n {
            e[j] = 1.0;
            self.apply(&e, &mut col);
            a.set_col(j, &col);
            e[j] = 0.0;
        }
        a
    }
}

/// Dense matrix as an operator.
pub struct DenseOperator {
    /// Underlying matrix.
    pub mat: DMatrix,
}

impl DenseOperator {
    /// Wrap a dense matrix.
    pub fn new(mat: DMatrix) -> Self {
        DenseOperator { mat }
    }
}

impl LinearOperator for DenseOperator {
    fn nrows(&self) -> usize {
        self.mat.nrows()
    }
    fn ncols(&self) -> usize {
        self.mat.ncols()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.mat.matvec(x, y);
    }
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        self.mat.matvec_t(x, y);
    }
}

/// Identity operator (trivial preconditioner).
pub struct IdentityOperator {
    /// Dimension.
    pub n: usize,
}

impl LinearOperator for IdentityOperator {
    fn nrows(&self) -> usize {
        self.n
    }
    fn ncols(&self) -> usize {
        self.n
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
}

/// Diagonal operator, e.g. the noise covariance `Γnoise = σ² I` or a Jacobi
/// preconditioner.
pub struct DiagonalOperator {
    /// Diagonal entries.
    pub d: Vec<f64>,
}

impl DiagonalOperator {
    /// Build from diagonal entries.
    pub fn new(d: Vec<f64>) -> Self {
        DiagonalOperator { d }
    }

    /// Constant diagonal `c·I` of dimension `n`.
    pub fn constant(c: f64, n: usize) -> Self {
        DiagonalOperator { d: vec![c; n] }
    }

    /// Inverse diagonal operator.
    pub fn inverse(&self) -> Self {
        DiagonalOperator {
            d: self.d.iter().map(|&v| 1.0 / v).collect(),
        }
    }
}

impl LinearOperator for DiagonalOperator {
    fn nrows(&self) -> usize {
        self.d.len()
    }
    fn ncols(&self) -> usize {
        self.d.len()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for ((yi, xi), di) in y.iter_mut().zip(x).zip(&self.d) {
            *yi = xi * di;
        }
    }
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        self.apply(x, y);
    }
}

/// Adjoint-consistency check `⟨A x, w⟩ ≈ ⟨x, Aᵀ w⟩` on given probe vectors;
/// returns the relative defect. The workhorse test for every operator in the
/// framework (the paper's adjoint PDE solves must satisfy this to machine
/// precision for the Toeplitz construction to be exact).
pub fn adjoint_defect<A: LinearOperator + ?Sized>(a: &A, x: &[f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(w.len(), a.nrows());
    let mut ax = vec![0.0; a.nrows()];
    a.apply(x, &mut ax);
    let mut atw = vec![0.0; a.ncols()];
    a.apply_transpose(w, &mut atw);
    let lhs = crate::vec_ops::dot(&ax, w);
    let rhs = crate::vec_ops::dot(x, &atw);
    (lhs - rhs).abs() / lhs.abs().max(rhs.abs()).max(1e-300)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_operator_adjoint_exact() {
        let a = DMatrix::from_fn(7, 5, |i, j| ((i * 5 + j) as f64 * 0.37).sin());
        let op = DenseOperator::new(a);
        let x: Vec<f64> = (0..5).map(|i| i as f64 + 1.0).collect();
        let w: Vec<f64> = (0..7).map(|i| (i as f64).cos()).collect();
        assert!(adjoint_defect(&op, &x, &w) < 1e-14);
    }

    #[test]
    fn to_dense_roundtrip() {
        let a = DMatrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let op = DenseOperator::new(a.clone());
        assert_eq!(op.to_dense(), a);
    }

    #[test]
    fn diagonal_inverse() {
        let d = DiagonalOperator::new(vec![2.0, 4.0]);
        let di = d.inverse();
        let mut y = vec![0.0; 2];
        di.apply(&[2.0, 4.0], &mut y);
        assert_eq!(y, vec![1.0, 1.0]);
    }

    #[test]
    fn identity_noop() {
        let id = IdentityOperator { n: 3 };
        let x = [1.0, 2.0, 3.0];
        let mut y = [0.0; 3];
        id.apply(&x, &mut y);
        assert_eq!(x, y);
    }
}
