//! Seedable Gaussian sampling.
//!
//! The framework needs `N(0,1)` draws for prior samples, measurement noise
//! (the paper adds 1 % relative noise to synthetic pressure data), and
//! Matheron-rule posterior sampling. `rand` ships only uniform sources, so we
//! implement the Box–Muller transform on top of it.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard normal draw via Box–Muller (fresh pair each call; the spare
/// is discarded for simplicity — sampling is never a hot path here).
pub fn randn<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = loop {
        let u: f64 = rng.random::<f64>();
        if u > 1e-300 {
            break u;
        }
    };
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fill a slice with iid `N(0,1)` draws.
pub fn fill_randn<R: RngExt + ?Sized>(rng: &mut R, out: &mut [f64]) {
    for v in out.iter_mut() {
        *v = randn(rng);
    }
}

/// A fresh vector of `n` iid `N(0,1)` draws.
pub fn randn_vec<R: RngExt + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    let mut v = vec![0.0; n];
    fill_randn(rng, &mut v);
    v
}

/// Uniform draws in `[lo, hi)`.
pub fn uniform_vec<R: RngExt + ?Sized>(rng: &mut R, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n).map(|_| rng.random_range(lo..hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = randn_vec(&mut seeded_rng(7), 10);
        let b = randn_vec(&mut seeded_rng(7), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn moments_are_standard_normal() {
        let n = 200_000;
        let v = randn_vec(&mut seeded_rng(42), n);
        let mean = v.iter().sum::<f64>() / n as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn tails_are_plausible() {
        // P(|Z| > 3) ≈ 0.0027; check the empirical rate is in a loose band.
        let n = 100_000;
        let v = randn_vec(&mut seeded_rng(1), n);
        let frac = v.iter().filter(|x| x.abs() > 3.0).count() as f64 / n as f64;
        assert!(
            frac > 0.0005 && frac < 0.008,
            "3-sigma tail fraction {frac}"
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let v = uniform_vec(&mut seeded_rng(5), 1000, -2.0, 3.0);
        assert!(v.iter().all(|&x| (-2.0..3.0).contains(&x)));
    }
}
