//! Row-major dense matrices with blocked, parallel multiplication kernels.
//!
//! These are the CPU stand-ins for the cuBLAS batched GEMMs the paper uses
//! in its FFTMatvec and data-space Hessian codes. The blocked kernel keeps a
//! `MC × KC` panel of `A` and a `KC × NC` panel of `B` hot in cache and is
//! parallelized over output row blocks with rayon.

use rayon::prelude::*;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Cache-blocking parameters for [`DMatrix::matmul`]. Tuned for ~32 KiB L1 /
/// 1 MiB L2 per core; correctness does not depend on them.
const MC: usize = 64;
const NC: usize = 256;
const KC: usize = 128;

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMatrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a function of `(row, col)`.
    /// # Example
    ///
    /// ```
    /// use tsunami_linalg::DMatrix;
    /// let a = DMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
    /// assert_eq!(a[(1, 2)], 5.0);
    /// // Matvec: y = A x.
    /// let mut y = vec![0.0; 2];
    /// a.matvec(&[1.0, 0.0, -1.0], &mut y);
    /// assert_eq!(y, vec![0.0 - 2.0, 3.0 - 5.0]);
    /// // Matmul against its transpose is symmetric.
    /// let ata = a.transpose().matmul(&a);
    /// assert_eq!(ata.nrows(), 3);
    /// assert_eq!(ata[(0, 1)], ata[(1, 0)]);
    /// ```
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DMatrix { rows, cols, data }
    }

    /// Wrap an existing row-major buffer.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: buffer size mismatch");
        DMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Overwrite column `j`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert_eq!(v.len(), self.rows);
        for (i, &x) in v.iter().enumerate() {
            self[(i, j)] = x;
        }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> DMatrix {
        let mut t = DMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix–vector product `y = A x` (serial).
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: x dim");
        assert_eq!(y.len(), self.rows, "matvec: y dim");
        for i in 0..self.rows {
            y[i] = crate::vec_ops::dot(self.row(i), x);
        }
    }

    /// Transposed matrix–vector product `y = Aᵀ x`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x dim");
        assert_eq!(y.len(), self.cols, "matvec_t: y dim");
        y.iter_mut().for_each(|v| *v = 0.0);
        for i in 0..self.rows {
            crate::vec_ops::axpy(x[i], self.row(i), y);
        }
    }

    /// Blocked parallel matrix product `C = A · B`.
    pub fn matmul(&self, b: &DMatrix) -> DMatrix {
        assert_eq!(self.cols, b.rows, "matmul: inner dim mismatch");
        let mut c = DMatrix::zeros(self.rows, b.cols);
        self.matmul_into(b, &mut c);
        c
    }

    /// `C = A · B` written into a caller-owned output (overwritten), so
    /// steady-state callers can reuse one allocation across products.
    /// This *is* the [`Self::matmul`] kernel — `matmul` allocates zeros
    /// and delegates here — so results are bitwise identical between the
    /// two entry points.
    pub fn matmul_into(&self, b: &DMatrix, c: &mut DMatrix) {
        assert_eq!(self.cols, b.rows, "matmul_into: inner dim mismatch");
        assert_eq!(
            (c.rows, c.cols),
            (self.rows, b.cols),
            "matmul_into: output shape mismatch"
        );
        c.data.fill(0.0);
        let (m, n, k) = (self.rows, b.cols, self.cols);
        let a_data = &self.data;
        let b_data = &b.data;
        c.data
            .par_chunks_mut(MC * n)
            .enumerate()
            .for_each(|(bi, c_block)| {
                let i0 = bi * MC;
                let i1 = (i0 + MC).min(m);
                for p0 in (0..k).step_by(KC) {
                    let p1 = (p0 + KC).min(k);
                    for j0 in (0..n).step_by(NC) {
                        let j1 = (j0 + NC).min(n);
                        for i in i0..i1 {
                            let a_row = &a_data[i * k..(i + 1) * k];
                            let c_row = &mut c_block[(i - i0) * n..(i - i0 + 1) * n];
                            for p in p0..p1 {
                                let aip = a_row[p];
                                if aip == 0.0 {
                                    continue;
                                }
                                let b_row = &b_data[p * n..(p + 1) * n];
                                for j in j0..j1 {
                                    c_row[j] += aip * b_row[j];
                                }
                            }
                        }
                    }
                }
            });
    }

    /// `C = Aᵀ · B` without materializing the transpose.
    pub fn matmul_tn(&self, b: &DMatrix) -> DMatrix {
        assert_eq!(self.rows, b.rows, "matmul_tn: inner dim mismatch");
        let (m, n) = (self.cols, b.cols);
        let k = self.rows;
        let mut c = DMatrix::zeros(m, n);
        // Parallelize over output rows; each output row i gathers column i of A.
        c.data.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
            for p in 0..k {
                let a_pi = self.data[p * m + i];
                if a_pi == 0.0 {
                    continue;
                }
                let b_row = &b.data[p * n..(p + 1) * n];
                for j in 0..n {
                    c_row[j] += a_pi * b_row[j];
                }
            }
        });
        c
    }

    /// `C = A · Bᵀ`.
    pub fn matmul_nt(&self, b: &DMatrix) -> DMatrix {
        assert_eq!(self.cols, b.cols, "matmul_nt: inner dim mismatch");
        let (m, n) = (self.rows, b.rows);
        let mut c = DMatrix::zeros(m, n);
        c.data.par_chunks_mut(n).enumerate().for_each(|(i, c_row)| {
            let a_row = self.row(i);
            for (j, cj) in c_row.iter_mut().enumerate() {
                *cj = crate::vec_ops::dot(a_row, b.row(j));
            }
        });
        c
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        crate::vec_ops::norm2(&self.data)
    }

    /// `self ← self + alpha · other`.
    pub fn add_scaled(&mut self, alpha: f64, other: &DMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        crate::vec_ops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Scale all entries.
    pub fn scale(&mut self, alpha: f64) {
        crate::vec_ops::scale(alpha, &mut self.data);
    }

    /// Force exact symmetry: `A ← (A + Aᵀ)/2`. Used on Gram matrices whose
    /// floating-point assembly is only symmetric to rounding.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize: square only");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|`.
    pub fn asymmetry(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        worst
    }

    /// Main diagonal.
    pub fn diag(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }

    /// Add `alpha` to the diagonal (e.g. `K ← K + σ² I`).
    pub fn shift_diag(&mut self, alpha: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += alpha;
        }
    }
}

impl Index<(usize, usize)> for DMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for DMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMatrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            let cols = self.cols.min(8);
            let row: Vec<String> = (0..cols)
                .map(|j| format!("{:10.4e}", self[(i, j)]))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> DMatrix {
        // Cheap deterministic LCG so tests don't need the rand crate here.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        DMatrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    fn naive_matmul(a: &DMatrix, b: &DMatrix) -> DMatrix {
        let mut c = DMatrix::zeros(a.nrows(), b.ncols());
        for i in 0..a.nrows() {
            for j in 0..b.ncols() {
                let mut s = 0.0;
                for p in 0..a.ncols() {
                    s += a[(i, p)] * b[(p, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive() {
        for &(m, k, n) in &[(3, 4, 5), (65, 130, 70), (128, 128, 128), (1, 7, 1)] {
            let a = rand_mat(m, k, 1);
            let b = rand_mat(k, n, 2);
            let c1 = a.matmul(&b);
            let c2 = naive_matmul(&a, &b);
            let mut diff = c1.clone();
            diff.add_scaled(-1.0, &c2);
            assert!(
                diff.norm_fro() < 1e-10 * c2.norm_fro().max(1.0),
                "matmul mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_into_reuses_output_and_matches_matmul_bitwise() {
        let a = rand_mat(65, 34, 9);
        let b = rand_mat(34, 21, 10);
        // Stale garbage in the reused output must be fully overwritten.
        let mut c = rand_mat(65, 21, 11);
        a.matmul_into(&b, &mut c);
        let fresh = a.matmul(&b);
        assert_eq!(c.as_slice(), fresh.as_slice());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = rand_mat(40, 23, 3);
        let b = rand_mat(40, 17, 4);
        let c1 = a.matmul_tn(&b);
        let c2 = a.transpose().matmul(&b);
        let mut diff = c1.clone();
        diff.add_scaled(-1.0, &c2);
        assert!(diff.norm_fro() < 1e-11);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = rand_mat(21, 33, 5);
        let b = rand_mat(19, 33, 6);
        let c1 = a.matmul_nt(&b);
        let c2 = a.matmul(&b.transpose());
        let mut diff = c1.clone();
        diff.add_scaled(-1.0, &c2);
        assert!(diff.norm_fro() < 1e-11);
    }

    #[test]
    fn matvec_consistent_with_matmul() {
        let a = rand_mat(30, 20, 7);
        let x: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut y = vec![0.0; 30];
        a.matvec(&x, &mut y);
        let xm = DMatrix::from_vec(20, 1, x.clone());
        let ym = a.matmul(&xm);
        for i in 0..30 {
            assert!((y[i] - ym[(i, 0)]).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_t_is_transpose_action() {
        let a = rand_mat(12, 9, 8);
        let x: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let mut y1 = vec![0.0; 9];
        a.matvec_t(&x, &mut y1);
        let mut y2 = vec![0.0; 9];
        a.transpose().matvec(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = rand_mat(15, 15, 9);
        let c = a.matmul(&DMatrix::identity(15));
        let mut diff = c;
        diff.add_scaled(-1.0, &a);
        assert!(diff.norm_fro() < 1e-14);
    }

    #[test]
    fn symmetrize_kills_asymmetry() {
        let mut a = rand_mat(10, 10, 10);
        assert!(a.asymmetry() > 0.0);
        a.symmetrize();
        assert_eq!(a.asymmetry(), 0.0);
    }

    #[test]
    fn transpose_involutive() {
        let a = rand_mat(6, 11, 11);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn shift_diag_adds() {
        let mut a = DMatrix::zeros(3, 3);
        a.shift_diag(2.5);
        assert_eq!(a.diag(), vec![2.5, 2.5, 2.5]);
    }
}
