//! Level-1 vector kernels with serial and rayon-parallel variants.
//!
//! The parallel variants use fixed chunking so results are deterministic for
//! a given thread split; tests that compare serial vs parallel use a small
//! tolerance to absorb the different summation orders.

use rayon::prelude::*;

/// Minimum length before the parallel variants fan out to the thread pool.
/// Below this, rayon overhead dominates the memory-bound kernel.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Parallel dot product; pairwise over chunks for better rounding behaviour.
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    if x.len() < PAR_THRESHOLD {
        return dot(x, y);
    }
    x.par_chunks(PAR_THRESHOLD)
        .zip(y.par_chunks(PAR_THRESHOLD))
        .map(|(a, b)| dot(a, b))
        .sum()
}

/// `y ← y + alpha x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Parallel `y ← y + alpha x`.
pub fn par_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "par_axpy: length mismatch");
    if x.len() < PAR_THRESHOLD {
        return axpy(alpha, x, y);
    }
    y.par_chunks_mut(PAR_THRESHOLD)
        .zip(x.par_chunks(PAR_THRESHOLD))
        .for_each(|(yc, xc)| axpy(alpha, xc, yc));
}

/// `y ← alpha x + beta y`.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// `x ← alpha x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Parallel Euclidean norm.
pub fn par_norm2(x: &[f64]) -> f64 {
    par_dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Relative L2 distance `‖x − y‖ / ‖y‖` (or absolute norm if `y = 0`).
pub fn rel_err(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in x.iter().zip(y) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Componentwise `z ← x ⊙ y` (Hadamard product).
#[inline]
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi * yi;
    }
}

/// Set all entries to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.iter_mut().for_each(|v| *v = 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn par_dot_matches_serial() {
        let n = PAR_THRESHOLD * 3 + 17;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).cos()).collect();
        let s = dot(&x, &y);
        let p = par_dot(&x, &y);
        assert!((s - p).abs() <= 1e-9 * s.abs().max(1.0), "{s} vs {p}");
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn par_axpy_matches_serial() {
        let n = PAR_THRESHOLD * 2 + 5;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y1: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
        let mut y2 = y1.clone();
        axpy(-0.5, &x, &mut y1);
        par_axpy(-0.5, &x, &mut y2);
        assert_eq!(y1, y2); // elementwise: exact equality expected
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn rel_err_zero_for_equal() {
        let x = [1.0, -2.0, 3.5];
        assert_eq!(rel_err(&x, &x), 0.0);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        axpby(2.0, &x, 0.5, &mut y);
        assert_eq!(y, [3.5, 6.0]);
    }
}
