//! Level-1 vector kernels with serial and rayon-parallel variants.
//!
//! The parallel variants use fixed chunking so results are deterministic for
//! a given thread split; tests that compare serial vs parallel use a small
//! tolerance to absorb the different summation orders.

use rayon::prelude::*;

/// Minimum length before the parallel variants fan out to the thread pool.
/// Below this, rayon overhead dominates the memory-bound kernel.
pub const PAR_THRESHOLD: usize = 1 << 14;

/// Dot product `xᵀy`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Parallel dot product; pairwise over chunks for better rounding behaviour.
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    if x.len() < PAR_THRESHOLD {
        return dot(x, y);
    }
    x.par_chunks(PAR_THRESHOLD)
        .zip(y.par_chunks(PAR_THRESHOLD))
        .map(|(a, b)| dot(a, b))
        .sum()
}

/// Dot product with sixteen independent accumulator lanes.
///
/// Reassociates the sum (unlike the strictly sequential [`dot`]), which
/// lets the compiler vectorize the reduction — and sixteen lanes give it
/// four vector accumulators, enough independent chains to hide FMA
/// latency instead of serializing on one. Results agree with [`dot`] to
/// roundoff reshuffling only. This is the sweep microkernel of the
/// RHS-major triangular solves: both operands are contiguous rows.
#[inline]
pub fn dot_lanes(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot_lanes: length mismatch");
    const LANES: usize = 16;
    let split = x.len() & !(LANES - 1);
    let mut acc = [0.0f64; LANES];
    for (cx, cy) in x[..split]
        .chunks_exact(LANES)
        .zip(y[..split].chunks_exact(LANES))
    {
        for t in 0..LANES {
            acc[t] += cx[t] * cy[t];
        }
    }
    let mut tail = 0.0;
    for (a, b) in x[split..].iter().zip(&y[split..]) {
        tail += a * b;
    }
    let mut width = LANES / 2;
    while width > 0 {
        for t in 0..width {
            acc[t] += acc[t + width];
        }
        width /= 2;
    }
    acc[0] + tail
}

/// Rank-R panel update `acc ← acc + alpha · Σ_r coeffs[r] · rows[r]`, where
/// `rows` is a contiguous row-major `R × width` block.
///
/// This is the GEMM microkernel of the RHS-major spine: rows are processed
/// eight (then four) at a time so each load/update/store pass over the
/// `width`-long accumulator is amortized over many fused multiply-adds,
/// instead of the one pass per row that a plain [`axpy`] loop pays. All
/// loads are unit-stride.
pub fn block_axpy(alpha: f64, coeffs: &[f64], rows: &[f64], width: usize, acc: &mut [f64]) {
    assert_eq!(
        rows.len(),
        coeffs.len() * width,
        "block_axpy: block shape mismatch"
    );
    assert_eq!(acc.len(), width, "block_axpy: accumulator width");
    let mut r = 0;
    while r + 8 <= coeffs.len() {
        let a: [f64; 8] = std::array::from_fn(|t| alpha * coeffs[r + t]);
        let block = &rows[r * width..(r + 8) * width];
        let (b0, rest) = block.split_at(width);
        let (b1, rest) = rest.split_at(width);
        let (b2, rest) = rest.split_at(width);
        let (b3, rest) = rest.split_at(width);
        let (b4, rest) = rest.split_at(width);
        let (b5, rest) = rest.split_at(width);
        let (b6, b7) = rest.split_at(width);
        for (j, av) in acc.iter_mut().enumerate() {
            let lo = a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
            let hi = a[4] * b4[j] + a[5] * b5[j] + a[6] * b6[j] + a[7] * b7[j];
            *av += lo + hi;
        }
        r += 8;
    }
    if r + 4 <= coeffs.len() {
        let a: [f64; 4] = std::array::from_fn(|t| alpha * coeffs[r + t]);
        let block = &rows[r * width..(r + 4) * width];
        let (b0, rest) = block.split_at(width);
        let (b1, rest) = rest.split_at(width);
        let (b2, b3) = rest.split_at(width);
        for (j, av) in acc.iter_mut().enumerate() {
            *av += a[0] * b0[j] + a[1] * b1[j] + a[2] * b2[j] + a[3] * b3[j];
        }
        r += 4;
    }
    for rr in r..coeffs.len() {
        axpy(alpha * coeffs[rr], &rows[rr * width..(rr + 1) * width], acc);
    }
}

/// Two-accumulator rank-R panel update: like [`block_axpy`], but each row
/// block loaded from `rows` feeds *two* accumulators
/// (`acc0 += alpha·Σ coeffs0[r]·rows[r]`, `acc1 += alpha·Σ coeffs1[r]·rows[r]`).
/// Streaming a shared block into multiple accumulators halves the
/// dominant load traffic per accumulator — the register-blocking axis the
/// grouped scenario-identification GEMM runs over lockstep streams.
pub fn block_axpy2(
    alpha: f64,
    coeffs0: &[f64],
    coeffs1: &[f64],
    rows: &[f64],
    width: usize,
    acc0: &mut [f64],
    acc1: &mut [f64],
) {
    assert_eq!(coeffs0.len(), coeffs1.len(), "block_axpy2: coeff lengths");
    assert_eq!(
        rows.len(),
        coeffs0.len() * width,
        "block_axpy2: block shape mismatch"
    );
    assert_eq!(acc0.len(), width, "block_axpy2: accumulator width");
    assert_eq!(acc1.len(), width, "block_axpy2: accumulator width");
    let r4 = coeffs0.len() & !3;
    let mut r = 0;
    while r < r4 {
        let a: [f64; 4] = std::array::from_fn(|t| alpha * coeffs0[r + t]);
        let c: [f64; 4] = std::array::from_fn(|t| alpha * coeffs1[r + t]);
        let block = &rows[r * width..(r + 4) * width];
        let (b0, rest) = block.split_at(width);
        let (b1, rest) = rest.split_at(width);
        let (b2, b3) = rest.split_at(width);
        for j in 0..width {
            let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
            acc0[j] += (a[0] * v0 + a[1] * v1) + (a[2] * v2 + a[3] * v3);
            acc1[j] += (c[0] * v0 + c[1] * v1) + (c[2] * v2 + c[3] * v3);
        }
        r += 4;
    }
    if r4 < coeffs0.len() {
        let tail = &rows[r4 * width..];
        block_axpy(alpha, &coeffs0[r4..], tail, width, acc0);
        block_axpy(alpha, &coeffs1[r4..], tail, width, acc1);
    }
}

/// Four-accumulator rank-R panel update: the 4-stream generalization of
/// [`block_axpy2`]. Each block of rows loaded from `rows` feeds *four*
/// accumulators (`acc[s] += alpha · Σ_r coeffs[s][r] · rows[r]`), so the
/// dominant load traffic is amortized over four misfit streams — and the
/// FMA-to-load ratio doubles over the pairwise kernel (16 fused updates
/// per 4 row values + 4 accumulator read/writes).
///
/// Rows are *strided*: row `r` occupies `rows[r·stride .. r·stride + width]`.
/// `stride == width` walks a contiguous row-major block (the
/// [`block_axpy`] layout); `stride > width` walks a column tile of a wider
/// block without copying — the tiling axis the grouped scenario-
/// identification GEMM uses once banks outgrow the cache.
pub fn block_axpy4(
    alpha: f64,
    coeffs: [&[f64]; 4],
    rows: &[f64],
    stride: usize,
    width: usize,
    acc: [&mut [f64]; 4],
) {
    let r_n = coeffs[0].len();
    for c in &coeffs {
        assert_eq!(c.len(), r_n, "block_axpy4: coeff lengths");
    }
    assert!(stride >= width, "block_axpy4: stride narrower than width");
    if r_n > 0 {
        assert!(
            rows.len() >= (r_n - 1) * stride + width,
            "block_axpy4: block shape mismatch"
        );
    }
    for a in &acc {
        assert_eq!(a.len(), width, "block_axpy4: accumulator width");
    }
    let [c0, c1, c2, c3] = coeffs;
    let [acc0, acc1, acc2, acc3] = acc;
    let r4 = r_n & !3;
    let mut r = 0;
    while r < r4 {
        let a: [f64; 4] = std::array::from_fn(|t| alpha * c0[r + t]);
        let b: [f64; 4] = std::array::from_fn(|t| alpha * c1[r + t]);
        let c: [f64; 4] = std::array::from_fn(|t| alpha * c2[r + t]);
        let d: [f64; 4] = std::array::from_fn(|t| alpha * c3[r + t]);
        let b0 = &rows[r * stride..r * stride + width];
        let b1 = &rows[(r + 1) * stride..(r + 1) * stride + width];
        let b2 = &rows[(r + 2) * stride..(r + 2) * stride + width];
        let b3 = &rows[(r + 3) * stride..(r + 3) * stride + width];
        for j in 0..width {
            let (v0, v1, v2, v3) = (b0[j], b1[j], b2[j], b3[j]);
            acc0[j] += (a[0] * v0 + a[1] * v1) + (a[2] * v2 + a[3] * v3);
            acc1[j] += (b[0] * v0 + b[1] * v1) + (b[2] * v2 + b[3] * v3);
            acc2[j] += (c[0] * v0 + c[1] * v1) + (c[2] * v2 + c[3] * v3);
            acc3[j] += (d[0] * v0 + d[1] * v1) + (d[2] * v2 + d[3] * v3);
        }
        r += 4;
    }
    for rr in r..r_n {
        let seg = &rows[rr * stride..rr * stride + width];
        axpy(alpha * c0[rr], seg, acc0);
        axpy(alpha * c1[rr], seg, acc1);
        axpy(alpha * c2[rr], seg, acc2);
        axpy(alpha * c3[rr], seg, acc3);
    }
}

/// `y ← y + alpha x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Parallel `y ← y + alpha x`.
pub fn par_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "par_axpy: length mismatch");
    if x.len() < PAR_THRESHOLD {
        return axpy(alpha, x, y);
    }
    y.par_chunks_mut(PAR_THRESHOLD)
        .zip(x.par_chunks(PAR_THRESHOLD))
        .for_each(|(yc, xc)| axpy(alpha, xc, yc));
}

/// `y ← alpha x + beta y`.
#[inline]
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// `x ← alpha x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Parallel Euclidean norm.
pub fn par_norm2(x: &[f64]) -> f64 {
    par_dot(x, x).sqrt()
}

/// Max norm `‖x‖∞`.
#[inline]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// Relative L2 distance `‖x − y‖ / ‖y‖` (or absolute norm if `y = 0`).
pub fn rel_err(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "rel_err: length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (a, b) in x.iter().zip(y) {
        num += (a - b) * (a - b);
        den += b * b;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Componentwise `z ← x ⊙ y` (Hadamard product).
#[inline]
pub fn hadamard(x: &[f64], y: &[f64], z: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    assert_eq!(x.len(), z.len());
    for ((zi, xi), yi) in z.iter_mut().zip(x).zip(y) {
        *zi = xi * yi;
    }
}

/// Set all entries to zero.
#[inline]
pub fn zero(x: &mut [f64]) {
    x.iter_mut().for_each(|v| *v = 0.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn par_dot_matches_serial() {
        let n = PAR_THRESHOLD * 3 + 17;
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.5).cos()).collect();
        let s = dot(&x, &y);
        let p = par_dot(&x, &y);
        assert!((s - p).abs() <= 1e-9 * s.abs().max(1.0), "{s} vs {p}");
    }

    #[test]
    fn dot_lanes_matches_dot_across_remainders() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 17, 100] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
            let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
            let a = dot(&x, &y);
            let b = dot_lanes(&x, &y);
            assert!(
                (a - b).abs() <= 1e-13 * a.abs().max(1.0),
                "n={n}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn block_axpy_matches_row_axpys() {
        // Row counts straddling the 4-row unroll, including the remainder.
        for rows in [0usize, 1, 3, 4, 5, 8, 11] {
            let width = 13;
            let coeffs: Vec<f64> = (0..rows).map(|r| (r as f64 * 1.3).sin()).collect();
            let block: Vec<f64> = (0..rows * width).map(|i| (i as f64 * 0.17).cos()).collect();
            let mut acc1: Vec<f64> = (0..width).map(|j| j as f64 * 0.1).collect();
            let mut acc2 = acc1.clone();
            block_axpy(-2.0, &coeffs, &block, width, &mut acc1);
            for r in 0..rows {
                axpy(
                    -2.0 * coeffs[r],
                    &block[r * width..(r + 1) * width],
                    &mut acc2,
                );
            }
            for (a, b) in acc1.iter().zip(&acc2) {
                assert!((a - b).abs() < 1e-12, "rows={rows}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn block_axpy2_matches_two_block_axpys() {
        for rows in [0usize, 1, 3, 4, 5, 7, 8, 9, 16, 19] {
            let width = 11;
            let c0: Vec<f64> = (0..rows).map(|r| (r as f64 * 0.9).sin()).collect();
            let c1: Vec<f64> = (0..rows).map(|r| (r as f64 * 1.7).cos()).collect();
            let block: Vec<f64> = (0..rows * width).map(|i| (i as f64 * 0.23).sin()).collect();
            let mut a0 = vec![0.5; width];
            let mut a1 = vec![-0.5; width];
            let mut r0 = a0.clone();
            let mut r1 = a1.clone();
            block_axpy2(-2.0, &c0, &c1, &block, width, &mut a0, &mut a1);
            block_axpy(-2.0, &c0, &block, width, &mut r0);
            block_axpy(-2.0, &c1, &block, width, &mut r1);
            for ((x, y), (u, v)) in a0.iter().zip(&r0).zip(a1.iter().zip(&r1)) {
                assert!((x - y).abs() < 1e-12, "rows={rows} acc0: {x} vs {y}");
                assert!((u - v).abs() < 1e-12, "rows={rows} acc1: {u} vs {v}");
            }
        }
    }

    #[test]
    fn block_axpy4_matches_four_block_axpys_at_awkward_widths() {
        // Row counts straddling the 4-row unroll and widths that are not
        // lane-friendly; contiguous layout (stride == width).
        for rows in [0usize, 1, 3, 4, 5, 7, 8, 9, 13, 16, 21] {
            for width in [1usize, 5, 11, 17] {
                let cs: Vec<Vec<f64>> = (0..4)
                    .map(|s| {
                        (0..rows)
                            .map(|r| ((r + 3 * s) as f64 * 0.9).sin())
                            .collect()
                    })
                    .collect();
                let block: Vec<f64> = (0..rows * width).map(|i| (i as f64 * 0.23).sin()).collect();
                let mut accs: Vec<Vec<f64>> = (0..4).map(|s| vec![0.5 - s as f64; width]).collect();
                let mut refs = accs.clone();
                {
                    let [a0, a1, a2, a3] = &mut accs[..] else {
                        unreachable!()
                    };
                    block_axpy4(
                        -2.0,
                        [&cs[0], &cs[1], &cs[2], &cs[3]],
                        &block,
                        width,
                        width,
                        [a0, a1, a2, a3],
                    );
                }
                for s in 0..4 {
                    block_axpy(-2.0, &cs[s], &block, width, &mut refs[s]);
                    for (x, y) in accs[s].iter().zip(&refs[s]) {
                        assert!(
                            (x - y).abs() < 1e-12,
                            "rows={rows} width={width} acc{s}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn block_axpy4_strided_walks_column_tiles() {
        // A column tile [c0, c0+width) of a wider row-major block must
        // produce the same update as the contiguous kernel on a gathered
        // copy of that tile.
        let (rows, full, width, c0) = (11usize, 29usize, 7usize, 9usize);
        let cs: Vec<Vec<f64>> = (0..4)
            .map(|s| {
                (0..rows)
                    .map(|r| ((r * 5 + s) as f64 * 0.37).cos())
                    .collect()
            })
            .collect();
        let block: Vec<f64> = (0..rows * full).map(|i| (i as f64 * 0.11).sin()).collect();
        let gathered: Vec<f64> = (0..rows)
            .flat_map(|r| block[r * full + c0..r * full + c0 + width].to_vec())
            .collect();
        let mut strided: Vec<Vec<f64>> = (0..4).map(|s| vec![s as f64 * 0.1; width]).collect();
        let mut contig = strided.clone();
        {
            let [a0, a1, a2, a3] = &mut strided[..] else {
                unreachable!()
            };
            block_axpy4(
                1.5,
                [&cs[0], &cs[1], &cs[2], &cs[3]],
                &block[c0..(rows - 1) * full + c0 + width],
                full,
                width,
                [a0, a1, a2, a3],
            );
        }
        {
            let [a0, a1, a2, a3] = &mut contig[..] else {
                unreachable!()
            };
            block_axpy4(
                1.5,
                [&cs[0], &cs[1], &cs[2], &cs[3]],
                &gathered,
                width,
                width,
                [a0, a1, a2, a3],
            );
        }
        assert_eq!(strided, contig, "strided tile walk must match gathered");
    }

    #[test]
    fn axpy_updates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn par_axpy_matches_serial() {
        let n = PAR_THRESHOLD * 2 + 5;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut y1: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
        let mut y2 = y1.clone();
        axpy(-0.5, &x, &mut y1);
        par_axpy(-0.5, &x, &mut y2);
        assert_eq!(y1, y2); // elementwise: exact equality expected
    }

    #[test]
    fn norms() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn rel_err_zero_for_equal() {
        let x = [1.0, -2.0, 3.5];
        assert_eq!(rel_err(&x, &x), 0.0);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        axpby(2.0, &x, 0.5, &mut y);
        assert_eq!(y, [3.5, 6.0]);
    }
}
