//! Complex double-precision arithmetic for the FFT machinery.
//!
//! A deliberate 16-byte `#[repr(C)]` value type so that `Vec<C64>` has the
//! same memory layout as the interleaved complex buffers cuFFT/rocFFT
//! operate on in the paper's FFTMatvec code.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// Complex number with `f64` components.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Construct a purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}` — point on the unit circle, used for FFT twiddle factors.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (no sqrt).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Fused multiply-add: `self + a*b`. The hot inner op of the
    /// per-frequency block matmuls.
    #[inline]
    pub fn mul_add(self, a: C64, b: C64) -> Self {
        C64 {
            re: self.re + a.re * b.re - a.im * b.im,
            im: self.im + a.re * b.im + a.im * b.re,
        }
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, o: C64) -> C64 {
        C64::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, o: C64) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, o: C64) -> C64 {
        C64::new(self.re - o.re, self.im - o.im)
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, o: C64) {
        self.re -= o.re;
        self.im -= o.im;
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, o: C64) -> C64 {
        C64::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, o: C64) {
        *self = *self * o;
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    // z/w as z * w^{-1}: the standard complex-division formula.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, o: C64) -> C64 {
        self * o.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, s: f64) -> C64 {
        self.scale(s)
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> C64 {
        C64::real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_spot_checks() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-3.0, 0.5);
        assert_eq!(a + b, C64::new(-2.0, 2.5));
        assert_eq!(a * C64::ONE, a);
        let ab = a * b;
        let ba = b * a;
        assert!((ab - ba).abs() < 1e-15);
    }

    #[test]
    fn inverse_roundtrip() {
        let z = C64::new(3.0, -4.0);
        let w = z * z.inv();
        assert!((w - C64::ONE).abs() < 1e-15);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = C64::cis(k as f64 * std::f64::consts::FRAC_PI_8);
            assert!((z.abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn conj_mul_is_norm() {
        let z = C64::new(2.0, 5.0);
        let n = z * z.conj();
        assert!((n.re - z.norm_sqr()).abs() < 1e-12);
        assert!(n.im.abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_expanded() {
        let acc = C64::new(0.5, -0.25);
        let a = C64::new(1.5, 2.0);
        let b = C64::new(-0.75, 3.0);
        let fused = acc.mul_add(a, b);
        let plain = acc + a * b;
        assert!((fused - plain).abs() < 1e-15);
    }
}
