//! RHS-major panels: the transposed multi-RHS layout of the batched spine.
//!
//! A [`DMatrix`] right-hand-side block is `n × B` with one RHS per
//! *column*, so any sweep that walks one RHS touches memory with stride
//! `B`. An [`RhsPanel`] stores the same block transposed — row-major
//! `B × n`, one RHS per contiguous *row* — so the triangular sweeps of
//! [`crate::Cholesky`] and the per-column spectra assembly of the FFT
//! kernels stream unit-stride. Blocks cross the layout boundary exactly
//! once per panel via [`RhsPanel::gather_cols`] / [`RhsPanel::scatter_cols`]
//! (instead of paying a strided gather per column inside the kernel), which
//! is what makes the transposed layout free to adopt incrementally.
//!
//! The microkernels that run on these contiguous rows live in
//! [`crate::vec_ops`]: [`crate::vec_ops::dot_lanes`] (reassociated dot, the
//! forward-sweep kernel) and [`crate::vec_ops::block_axpy`] (rank-R fused
//! row update, the backward-sweep / GEMM kernel).

use crate::matrix::DMatrix;

/// Row-major `B × n` block of `B` right-hand sides of dimension `n`,
/// one RHS per contiguous row.
#[derive(Clone, Debug, PartialEq)]
pub struct RhsPanel {
    nrhs: usize,
    n: usize,
    data: Vec<f64>,
}

impl RhsPanel {
    /// Zero panel of `nrhs` right-hand sides of dimension `n`.
    pub fn zeros(nrhs: usize, n: usize) -> Self {
        RhsPanel {
            nrhs,
            n,
            data: vec![0.0; nrhs * n],
        }
    }

    /// Wrap an existing row-major `nrhs × n` buffer.
    pub fn from_vec(nrhs: usize, n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrhs * n, "from_vec: buffer size mismatch");
        RhsPanel { nrhs, n, data }
    }

    /// Transpose a whole `n × B` column-major-RHS block in: panel row `r`
    /// becomes column `r` of `m`.
    ///
    /// # Example
    ///
    /// ```
    /// use tsunami_linalg::{DMatrix, RhsPanel};
    /// let m = DMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
    /// let p = RhsPanel::from_matrix(&m);
    /// assert_eq!(p.nrhs(), 2);
    /// assert_eq!(p.row(1), &[1.0, 3.0, 5.0]); // column 1 of m, contiguous
    /// assert_eq!(p.to_matrix(), m); // transpose-out round-trips
    /// ```
    pub fn from_matrix(m: &DMatrix) -> Self {
        Self::gather_cols(m, 0, m.ncols())
    }

    /// Transpose columns `[j0, j1)` of an `n × B` block in — the gather
    /// side of panel-wise processing (one layout crossing per panel).
    /// Reads `m` row-major (contiguous row segments); the strided writes
    /// fan out over at most `j1 − j0` panel rows.
    pub fn gather_cols(m: &DMatrix, j0: usize, j1: usize) -> Self {
        assert!(j0 <= j1 && j1 <= m.ncols(), "gather_cols: bad range");
        let (nrhs, n) = (j1 - j0, m.nrows());
        let mut p = RhsPanel::zeros(nrhs, n);
        for i in 0..n {
            let src = &m.row(i)[j0..j1];
            for (r, &v) in src.iter().enumerate() {
                p.data[r * n + i] = v;
            }
        }
        p
    }

    /// Transpose the panel out into columns `[j0, j0 + nrhs)` of `m` —
    /// the scatter side of panel-wise processing.
    pub fn scatter_cols(&self, m: &mut DMatrix, j0: usize) {
        assert_eq!(m.nrows(), self.n, "scatter_cols: row mismatch");
        assert!(j0 + self.nrhs <= m.ncols(), "scatter_cols: panel overflows");
        for i in 0..self.n {
            let dst = &mut m.row_mut(i)[j0..j0 + self.nrhs];
            for (r, v) in dst.iter_mut().enumerate() {
                *v = self.data[r * self.n + i];
            }
        }
    }

    /// Transpose out into a fresh `n × nrhs` [`DMatrix`].
    pub fn to_matrix(&self) -> DMatrix {
        let mut m = DMatrix::zeros(self.n, self.nrhs);
        self.scatter_cols(&mut m, 0);
        m
    }

    /// Number of right-hand sides `B` (panel rows).
    #[inline]
    pub fn nrhs(&self) -> usize {
        self.nrhs
    }

    /// Dimension `n` of each right-hand side (panel row length).
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Borrow right-hand side `r` as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.n..(r + 1) * self.n]
    }

    /// Mutably borrow right-hand side `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.n..(r + 1) * self.n]
    }

    /// Iterate over the right-hand sides, one contiguous row each.
    /// Degenerate `dim() == 0` panels yield no rows — there is no
    /// per-RHS data to visit.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.n.max(1))
    }

    /// Mutably iterate over the right-hand sides (same degenerate-case
    /// contract as [`Self::rows`]).
    pub fn rows_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        self.data.chunks_exact_mut(self.n.max(1))
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> DMatrix {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        DMatrix::from_fn(rows, cols, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    #[test]
    fn gather_matches_columns() {
        let m = rand_mat(7, 9, 3);
        let p = RhsPanel::gather_cols(&m, 2, 6);
        assert_eq!(p.nrhs(), 4);
        assert_eq!(p.dim(), 7);
        for r in 0..4 {
            assert_eq!(p.row(r), m.col(2 + r).as_slice(), "row {r}");
        }
    }

    #[test]
    fn scatter_restores_columns() {
        let m = rand_mat(6, 8, 5);
        let p = RhsPanel::gather_cols(&m, 3, 8);
        let mut out = DMatrix::zeros(6, 8);
        p.scatter_cols(&mut out, 3);
        for i in 0..6 {
            for j in 0..8 {
                let want = if j >= 3 { m[(i, j)] } else { 0.0 };
                assert_eq!(out[(i, j)], want);
            }
        }
    }

    #[test]
    fn full_round_trip_is_exact() {
        for &(n, b) in &[(1usize, 1usize), (5, 3), (12, 12), (33, 7), (4, 40)] {
            let m = rand_mat(n, b, (n * b) as u64);
            assert_eq!(RhsPanel::from_matrix(&m).to_matrix(), m, "{n}x{b}");
        }
    }

    #[test]
    fn rows_iterators_cover_every_rhs() {
        let m = rand_mat(5, 4, 9);
        let mut p = RhsPanel::from_matrix(&m);
        assert_eq!(p.rows().count(), 4);
        for (r, row) in p.rows().enumerate() {
            assert_eq!(row, m.col(r).as_slice());
        }
        for row in p.rows_mut() {
            for v in row.iter_mut() {
                *v *= 2.0;
            }
        }
        for r in 0..4 {
            for (a, b) in p.row(r).iter().zip(m.col(r)) {
                assert_eq!(*a, 2.0 * b);
            }
        }
    }

    mod round_trip_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Transpose-in then transpose-out is the identity for any
            /// shape, and gather/scatter of a random column range restores
            /// exactly the gathered columns.
            #[test]
            fn transpose_round_trips(
                n in 1usize..40,
                b in 1usize..40,
                j0 in 0usize..40,
                width in 1usize..40,
                seed in 0u64..1_000_000,
            ) {
                let m = rand_mat(n, b, seed);
                prop_assert_eq!(RhsPanel::from_matrix(&m).to_matrix(), m.clone());

                let j0 = j0 % b;
                let j1 = (j0 + width).min(b);
                let p = RhsPanel::gather_cols(&m, j0, j1);
                let mut out = DMatrix::zeros(n, b);
                p.scatter_cols(&mut out, j0);
                for i in 0..n {
                    for j in j0..j1 {
                        prop_assert_eq!(out[(i, j)], m[(i, j)]);
                    }
                }
            }
        }
    }

    #[test]
    fn empty_dimensions_are_harmless() {
        let p = RhsPanel::zeros(0, 5);
        assert_eq!(p.rows().count(), 0);
        let m = DMatrix::zeros(4, 0);
        let p = RhsPanel::from_matrix(&m);
        assert_eq!(p.nrhs(), 0);
        assert_eq!(p.to_matrix().ncols(), 0);
    }
}
