//! Preconditioned conjugate gradients.
//!
//! CG is both (a) the inner elliptic solver for the Matérn prior when the
//! fast DCT path is disabled, and (b) the **state-of-the-art baseline** the
//! paper argues against in §IV: solving the normal equations
//! `(FᵀΓn⁻¹F + Γp⁻¹) m = FᵀΓn⁻¹ d` with prior-preconditioned CG converges in
//! a number of iterations of the order of the effective rank of the
//! prior-preconditioned data misfit Hessian — which, for seafloor pressure
//! sensing, is nearly the data dimension.

use crate::operator::LinearOperator;
use crate::vec_ops::{axpy, dot, norm2, zero};

/// Options for [`cg_solve`].
#[derive(Clone, Debug)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖/‖b‖`.
    pub rtol: f64,
    /// Absolute residual tolerance.
    pub atol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Record `‖r‖` each iteration (for convergence-history figures).
    pub record_history: bool,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            rtol: 1e-10,
            atol: 0.0,
            max_iter: 10_000,
            record_history: false,
        }
    }
}

/// Outcome of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// Number of iterations performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖`.
    pub residual: f64,
    /// Whether the tolerance was met within `max_iter`.
    pub converged: bool,
    /// Residual history (empty unless requested).
    pub history: Vec<f64>,
}

/// Solve `A x = b` for SPD `A` with optional SPD preconditioner `M ≈ A⁻¹`
/// (pass `None` for unpreconditioned CG). `x` holds the initial guess on
/// entry and the solution on exit.
/// # Example
///
/// ```
/// use tsunami_linalg::{cg_solve, CgOptions, DMatrix, DenseOperator};
/// let a = DenseOperator::new(DMatrix::from_fn(3, 3, |i, j| {
///     if i == j { 4.0 } else { 1.0 }
/// }));
/// let b = [6.0, 6.0, 6.0];
/// let mut x = vec![0.0; 3];
/// let res = cg_solve::<_, DenseOperator>(&a, None, &b, &mut x, &CgOptions::default());
/// assert!(res.converged);
/// for v in x {
///     assert!((v - 1.0).abs() < 1e-8);
/// }
/// ```
pub fn cg_solve<A, M>(a: &A, m: Option<&M>, b: &[f64], x: &mut [f64], opts: &CgOptions) -> CgResult
where
    A: LinearOperator + ?Sized,
    M: LinearOperator + ?Sized,
{
    let n = b.len();
    assert_eq!(a.nrows(), n, "cg: operator rows");
    assert_eq!(a.ncols(), n, "cg: operator must be square");
    assert_eq!(x.len(), n, "cg: x dim");

    let bnorm = norm2(b);
    let target = (opts.rtol * bnorm).max(opts.atol);

    let mut r = vec![0.0; n];
    a.apply(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z = vec![0.0; n];
    let apply_prec = |r: &[f64], z: &mut [f64]| match m {
        Some(op) => op.apply(r, z),
        None => z.copy_from_slice(r),
    };
    apply_prec(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    let mut history = Vec::new();

    let mut rnorm = norm2(&r);
    if opts.record_history {
        history.push(rnorm);
    }
    if rnorm <= target {
        return CgResult {
            iterations: 0,
            residual: rnorm,
            converged: true,
            history,
        };
    }

    for iter in 1..=opts.max_iter {
        a.apply(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Negative curvature: operator is not SPD (or severe rounding).
            return CgResult {
                iterations: iter - 1,
                residual: rnorm,
                converged: false,
                history,
            };
        }
        let alpha = rz / pap;
        axpy(alpha, &p, x);
        axpy(-alpha, &ap, &mut r);
        rnorm = norm2(&r);
        if opts.record_history {
            history.push(rnorm);
        }
        if rnorm <= target {
            return CgResult {
                iterations: iter,
                residual: rnorm,
                converged: true,
                history,
            };
        }
        apply_prec(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        // p ← z + beta p
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    CgResult {
        iterations: opts.max_iter,
        residual: rnorm,
        converged: false,
        history,
    }
}

/// Solve with a zero initial guess, allocating the solution.
pub fn cg_solve_fresh<A, M>(
    a: &A,
    m: Option<&M>,
    b: &[f64],
    opts: &CgOptions,
) -> (Vec<f64>, CgResult)
where
    A: LinearOperator + ?Sized,
    M: LinearOperator + ?Sized,
{
    let mut x = vec![0.0; b.len()];
    zero(&mut x);
    let res = cg_solve(a, m, b, &mut x, opts);
    (x, res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::DMatrix;
    use crate::operator::{DenseOperator, DiagonalOperator, IdentityOperator};

    fn spd_op(n: usize) -> DenseOperator {
        let m = DMatrix::from_fn(n, n, |i, j| ((i * n + j) as f64 * 0.17).sin());
        let mut a = m.matmul_nt(&m);
        a.shift_diag(n as f64);
        a.symmetrize();
        DenseOperator::new(a)
    }

    #[test]
    fn solves_spd_system() {
        let n = 50;
        let a = spd_op(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let (x, res) = cg_solve_fresh::<_, IdentityOperator>(&a, None, &b, &CgOptions::default());
        assert!(res.converged, "CG failed: {res:?}");
        let mut r = vec![0.0; n];
        a.apply(&x, &mut r);
        axpy(-1.0, &b, &mut r);
        assert!(norm2(&r) < 1e-8 * norm2(&b));
    }

    #[test]
    fn identity_converges_instantly() {
        let id = IdentityOperator { n: 10 };
        let b = vec![1.0; 10];
        let (x, res) = cg_solve_fresh::<_, IdentityOperator>(&id, None, &b, &CgOptions::default());
        assert!(res.iterations <= 1);
        assert!(norm2(&x) > 0.0);
    }

    #[test]
    fn jacobi_preconditioner_reduces_iterations() {
        // Badly scaled diagonal-dominant system.
        let n = 200;
        let mut a = DMatrix::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = 10.0_f64.powf(4.0 * i as f64 / n as f64);
        }
        for i in 0..n - 1 {
            a[(i, i + 1)] = 0.1;
            a[(i + 1, i)] = 0.1;
        }
        let op = DenseOperator::new(a.clone());
        let prec = DiagonalOperator::new(a.diag().iter().map(|d| 1.0 / d).collect());
        let b = vec![1.0; n];
        let opts = CgOptions {
            rtol: 1e-10,
            ..Default::default()
        };
        let (_, plain) = cg_solve_fresh::<_, IdentityOperator>(&op, None, &b, &opts);
        let (_, pre) = cg_solve_fresh(&op, Some(&prec), &b, &opts);
        assert!(pre.converged);
        assert!(
            pre.iterations < plain.iterations,
            "preconditioning did not help: {} vs {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn exact_in_n_iterations() {
        // CG terminates in ≤ n steps in exact arithmetic; allow slack for fp.
        let n = 30;
        let a = spd_op(n);
        let b = vec![1.0; n];
        let (_, res) = cg_solve_fresh::<_, IdentityOperator>(&a, None, &b, &CgOptions::default());
        assert!(res.iterations <= n + 5);
    }

    #[test]
    fn history_recorded_and_monotonic_tail() {
        let n = 40;
        let a = spd_op(n);
        let b = vec![1.0; n];
        let opts = CgOptions {
            record_history: true,
            ..Default::default()
        };
        let (_, res) = cg_solve_fresh::<_, IdentityOperator>(&a, None, &b, &opts);
        assert_eq!(res.history.len(), res.iterations + 1);
        assert!(res.history.last().unwrap() < res.history.first().unwrap());
    }
}
