//! Randomized truncated SVD: the offline compressor behind POD/ROM
//! scenario-bank identification.
//!
//! The Fujita/Nomura line of work (arXiv:2407.03631) runs tsunami
//! scenario identification against databases of thousands of precomputed
//! waveforms by first compressing the bank into a handful of POD modes.
//! The compression itself is a truncated SVD of the stacked observation
//! block `A` (`n × B`, one scenario per column), computed here with the
//! Halko–Martinsson–Tropp randomized scheme:
//!
//! 1. **Range sampling** — draw a Gaussian test matrix `Ω` (`B × l`,
//!    `l = rank + oversample`) and form `Y = A·Ω`; a couple of subspace
//!    (power) iterations `Y ← A·(Aᵀ·Y)` sharpen the spectrum when the
//!    singular values decay slowly.
//! 2. **Orthonormalization** — a twice-applied modified Gram–Schmidt
//!    turns `Y` into an orthonormal range basis `Q` ([`orthonormalize`]).
//! 3. **Small eigenproblem** — with `S = QᵀA` (`l × B`), the Gram matrix
//!    `G = S·Sᵀ` is only `l × l`; its eigendecomposition
//!    ([`crate::eigen::symmetric_eigen`]) gives the singular values
//!    `σ_i = √λ_i` and rotates `Q` into the left singular vectors
//!    `U = Q·V`. Right vectors follow as `Vᵗ_i = σ_i⁻¹ (U_i)ᵀ A = σ_i⁻¹ v_iᵀ S`.
//!
//! Everything dense is a [`DMatrix`] product already blocked and
//! parallelized; the per-element cost is `O(n·B·l)` — one pass over the
//! bank per sampling/projection step — instead of the `O(n·B·min(n,B))`
//! of a full SVD.

use crate::matrix::DMatrix;
use crate::random::{randn, seeded_rng};
use crate::{eigen, vec_ops};

/// A rank-`r` truncated singular value decomposition `A ≈ U Σ Vᵀ`.
pub struct TruncatedSvd {
    /// Left singular vectors, `n × r` (orthonormal columns — the POD
    /// modes when `A` is a scenario bank).
    pub u: DMatrix,
    /// Singular values, descending, length `r`.
    pub s: Vec<f64>,
    /// Right singular vectors, transposed: `r × B` with orthonormal rows.
    pub vt: DMatrix,
}

impl TruncatedSvd {
    /// Rank of the truncation.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Squared Frobenius energy captured by the truncation, `Σ σ_i²`.
    pub fn energy(&self) -> f64 {
        self.s.iter().map(|s| s * s).sum()
    }

    /// The transposed Moore–Penrose pseudo-inverse of the decomposed
    /// matrix, `(A⁺)ᵀ = U Σ⁻¹ Vᵀ` (`n × B` for an `n × B` input). Singular
    /// values at or below `rtol · σ₀` are treated as zero — their modes
    /// are dropped from the inverse instead of amplifying noise — so the
    /// product is the pseudo-inverse of the *numerical* rank.
    ///
    /// The identity this serves: for `A` with the SVD `A = U Σ Vᵀ`,
    /// `A (AᵀA)⁺ = U Σ⁻¹ Vᵀ`, which is how a precomputed operator absorbs
    /// the Gram pseudo-inverse of a non-orthonormal basis restriction in
    /// one factor (see `tsunami-core`'s mode-space ladder).
    pub fn pinv_transpose(&self, rtol: f64) -> DMatrix {
        let cut = self.s.first().copied().unwrap_or(0.0) * rtol.max(0.0);
        // Scale U's columns by 1/σ (zero for dropped modes), then rotate
        // by Vᵀ: (A⁺)ᵀ = (U Σ⁻¹) Vᵀ.
        let u_scaled = DMatrix::from_fn(self.u.nrows(), self.rank(), |i, j| {
            if self.s[j] > cut && self.s[j] > 1e-300 {
                self.u[(i, j)] / self.s[j]
            } else {
                0.0
            }
        });
        u_scaled.matmul(&self.vt)
    }
}

/// Knobs for [`randomized_svd`]. The defaults (8 extra sample columns,
/// 2 subspace iterations) follow the standard randomized-SVD guidance
/// and are accurate to near the deterministic optimum for the smooth
/// wavefield banks this repo compresses.
#[derive(Clone, Copy, Debug)]
pub struct SvdOptions {
    /// Extra Gaussian sample columns beyond the requested rank.
    pub oversample: usize,
    /// Subspace (power) iterations `Y ← A·(Aᵀ·Y)` after the first sample.
    pub power_iters: usize,
    /// RNG seed for the Gaussian test matrix (deterministic results).
    pub seed: u64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions {
            oversample: 8,
            power_iters: 2,
            seed: 0x90D_5EED,
        }
    }
}

/// Twice-applied modified Gram–Schmidt, in place over the columns of `y`.
/// Returns the number of numerically independent columns kept; dependent
/// columns (norm below `1e-12` of the largest seen) are zeroed and moved
/// past the returned count, so callers truncate to the leading block.
pub fn orthonormalize(y: &mut DMatrix) -> usize {
    let (n, l) = (y.nrows(), y.ncols());
    let mut kept = 0;
    let mut max_norm = 0.0f64;
    for j in 0..l {
        let mut col = y.col(j);
        // Two MGS passes against everything already accepted: the second
        // pass mops up the cancellation error of the first, which is what
        // makes the basis orthonormal to working precision.
        for _ in 0..2 {
            for k in 0..kept {
                let qk = y.col(k);
                let proj = vec_ops::dot(&col, &qk);
                for (c, q) in col.iter_mut().zip(&qk) {
                    *c -= proj * q;
                }
            }
        }
        let norm = vec_ops::norm2(&col);
        max_norm = max_norm.max(norm);
        if norm > 1e-12 * max_norm.max(1e-300) {
            for v in col.iter_mut() {
                *v /= norm;
            }
            for i in 0..n {
                y[(i, kept)] = col[i];
            }
            kept += 1;
        }
    }
    for j in kept..l {
        for i in 0..n {
            y[(i, j)] = 0.0;
        }
    }
    kept
}

/// Rank-`rank` randomized truncated SVD of `a` (see the [module
/// docs](self)). The returned rank is `min(rank, n, B)`, possibly less if
/// the sampled range is numerically rank-deficient.
pub fn randomized_svd(a: &DMatrix, rank: usize, opts: SvdOptions) -> TruncatedSvd {
    let (n, b) = (a.nrows(), a.ncols());
    assert!(rank >= 1, "randomized_svd: rank must be at least 1");
    let target = rank.min(n).min(b);
    let l = (target + opts.oversample).min(n).min(b);

    // 1. Range sampling: Y = A·Ω with Gaussian Ω, then subspace
    //    iterations with re-orthonormalization between passes (the
    //    standard fix for the power iteration's loss of column
    //    independence).
    let mut rng = seeded_rng(opts.seed);
    let omega = DMatrix::from_fn(b, l, |_, _| randn(&mut rng));
    let mut y = a.matmul(&omega);
    for _ in 0..opts.power_iters {
        orthonormalize(&mut y);
        let z = a.matmul_tn(&y);
        y = a.matmul(&z);
    }

    // 2. Orthonormal range basis Q (keep only independent columns).
    let kept = orthonormalize(&mut y);
    let q = DMatrix::from_fn(n, kept, |i, j| y[(i, j)]);

    // 3. Small eigenproblem on the Gram matrix of S = QᵀA.
    let s_small = q.matmul_tn(a);
    let mut gram = s_small.matmul_nt(&s_small);
    gram.symmetrize();
    let (eig, v) = eigen::symmetric_eigen(gram, 1e-14, 60);

    let r = target.min(kept);
    let sigma: Vec<f64> = eig[..r].iter().map(|&l| l.max(0.0).sqrt()).collect();
    let v_lead = DMatrix::from_fn(kept, r, |i, j| v[(i, j)]);
    let u = q.matmul(&v_lead);
    // Vᵀ rows: σ_i⁻¹ v_iᵀ S (zero where σ underflows — the subspace is
    // exhausted there and the mode carries no energy).
    let vs = v_lead.matmul_tn(&s_small);
    let vt = DMatrix::from_fn(r, b, |i, j| {
        if sigma[i] > 1e-300 {
            vs[(i, j)] / sigma[i]
        } else {
            0.0
        }
    });
    TruncatedSvd { u, s: sigma, vt }
}

/// Energy-based rank cut: the smallest `r` whose leading singular values
/// capture at least `frac` of the total energy `Σ σ_i²`. `frac` is
/// clamped to `[0, 1]`; always returns at least 1 for a nonempty
/// spectrum.
pub fn energy_rank(singular_values: &[f64], frac: f64) -> usize {
    let frac = frac.clamp(0.0, 1.0);
    let total: f64 = singular_values.iter().map(|s| s * s).sum();
    if total <= 0.0 || singular_values.is_empty() {
        return singular_values.len().min(1);
    }
    let mut acc = 0.0;
    for (i, s) in singular_values.iter().enumerate() {
        acc += s * s;
        if acc >= frac * total {
            return i + 1;
        }
    }
    singular_values.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random matrix (LCG; tests stay rand-free).
    fn rand_mat(rows: usize, cols: usize, seed: u64) -> DMatrix {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        DMatrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
    }

    /// An exactly rank-`r` matrix with prescribed singular-value decay.
    fn low_rank(n: usize, b: usize, r: usize, seed: u64) -> DMatrix {
        let mut u = rand_mat(n, r, seed);
        orthonormalize(&mut u);
        let mut v = rand_mat(b, r, seed + 7);
        orthonormalize(&mut v);
        let sv = DMatrix::from_fn(r, b, |i, j| v[(j, i)] * 2.0f64.powi(-(i as i32)));
        u.matmul(&sv)
    }

    #[test]
    fn recovers_exactly_low_rank_matrices() {
        let (n, b, r) = (60, 40, 5);
        let a = low_rank(n, b, r, 3);
        let svd = randomized_svd(&a, r, SvdOptions::default());
        assert_eq!(svd.rank(), r);
        // σ_i = 2⁻ⁱ by construction.
        for (i, s) in svd.s.iter().enumerate() {
            assert!((s - 2.0f64.powi(-(i as i32))).abs() < 1e-9, "σ_{i} = {s}");
        }
        // Reconstruction A ≈ U Σ Vᵀ to roundoff (rank is exact).
        let usv = {
            let mut sv = svd.vt.clone();
            for i in 0..r {
                vec_ops::scale(svd.s[i], sv.row_mut(i));
            }
            svd.u.matmul(&sv)
        };
        let mut diff = usv;
        diff.add_scaled(-1.0, &a);
        assert!(diff.norm_fro() < 1e-9 * a.norm_fro());
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = rand_mat(50, 30, 11);
        let svd = randomized_svd(&a, 12, SvdOptions::default());
        let utu = svd.u.matmul_tn(&svd.u);
        let vvt = svd.vt.matmul_nt(&svd.vt);
        let mut du = utu;
        du.add_scaled(-1.0, &DMatrix::identity(12));
        let mut dv = vvt;
        dv.add_scaled(-1.0, &DMatrix::identity(12));
        assert!(du.norm_fro() < 1e-9, "U columns not orthonormal");
        assert!(dv.norm_fro() < 1e-9, "V rows not orthonormal");
    }

    #[test]
    fn truncation_error_tracks_tail_energy() {
        // A full-rank matrix with geometric singular-value decay: the
        // rank-r truncation error must be close to the optimal
        // √(Σ_{i≥r} σ_i²) (randomized SVD with oversampling + power
        // iterations is near-optimal on fast-decaying spectra).
        let (n, b) = (48, 48);
        let mut u = rand_mat(n, n, 21);
        orthonormalize(&mut u);
        let mut v = rand_mat(b, b, 22);
        orthonormalize(&mut v);
        let decays: Vec<f64> = (0..n).map(|i| 0.5f64.powi(i as i32)).collect();
        let sv = DMatrix::from_fn(n, b, |i, j| v[(j, i)] * decays[i]);
        let a = u.matmul(&sv);

        let r = 8;
        let svd = randomized_svd(&a, r, SvdOptions::default());
        let usv = {
            let mut svt = svd.vt.clone();
            for i in 0..r {
                vec_ops::scale(svd.s[i], svt.row_mut(i));
            }
            svd.u.matmul(&svt)
        };
        let mut diff = usv;
        diff.add_scaled(-1.0, &a);
        let opt: f64 = decays[r..].iter().map(|s| s * s).sum::<f64>().sqrt();
        assert!(
            diff.norm_fro() < 3.0 * opt,
            "truncation error {} far above optimal {opt}",
            diff.norm_fro()
        );
    }

    #[test]
    fn pinv_transpose_inverts_the_gram_matrix() {
        // For full-column-rank A, A⁺A = I, so Xᵀ = A⁺ from the SVD must
        // satisfy XᵀA = I and A·X·(anything) reproduces the orthogonal
        // projector onto range(A): A Xᵀ... here check XᵀA = I directly.
        let a = rand_mat(40, 9, 17);
        let svd = randomized_svd(&a, 9, SvdOptions::default());
        let x = svd.pinv_transpose(1e-12); // 40 × 9, columns = rows of A⁺
        let xta = x.matmul_tn(&a); // (A⁺) A, 9 × 9
        let mut d = xta;
        d.add_scaled(-1.0, &DMatrix::identity(9));
        assert!(d.norm_fro() < 1e-9, "A⁺A drifted from identity");
        // A (AᵀA)⁺ AᵀA = A: the Gram-absorption identity the mode-space
        // ladder relies on.
        let gram = a.matmul_tn(&a);
        let mut rec = x.matmul(&gram);
        rec.add_scaled(-1.0, &a);
        assert!(rec.norm_fro() < 1e-8 * a.norm_fro());
    }

    #[test]
    fn pinv_transpose_drops_sub_rtol_modes() {
        // A numerically rank-1 matrix: the second singular value sits at
        // 1e-14·σ₀ and must not be inverted through.
        let u = {
            let mut m = rand_mat(20, 2, 31);
            orthonormalize(&mut m);
            m
        };
        let v = {
            let mut m = rand_mat(6, 2, 32);
            orthonormalize(&mut m);
            m
        };
        let sv = DMatrix::from_fn(2, 6, |i, j| v[(j, i)] * if i == 0 { 1.0 } else { 1e-14 });
        let a = u.matmul(&sv);
        let svd = randomized_svd(&a, 2, SvdOptions::default());
        let x = svd.pinv_transpose(1e-10);
        // Every entry of the pseudo-inverse stays O(1/σ₀): the 1e14
        // blow-up of the dropped mode never appears.
        let max = x.as_slice().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max < 1e3, "dropped mode leaked into the inverse: {max}");
    }

    #[test]
    fn energy_rank_cuts_where_expected() {
        let s = [2.0, 1.0, 0.5, 0.25];
        // total = 4 + 1 + 0.25 + 0.0625 = 5.3125
        assert_eq!(energy_rank(&s, 0.0), 1);
        assert_eq!(energy_rank(&s, 0.75), 1); // 4/5.3125 ≈ 0.753
        assert_eq!(energy_rank(&s, 0.90), 2); // 5/5.3125 ≈ 0.941
        assert_eq!(energy_rank(&s, 0.985), 3); // 5.25/5.3125 ≈ 0.988
        assert_eq!(energy_rank(&s, 1.0), 4);
        assert_eq!(energy_rank(&[], 0.5), 0);
    }

    #[test]
    fn orthonormalize_drops_dependent_columns() {
        let mut y = DMatrix::from_fn(6, 3, |i, j| match j {
            0 => (i as f64 + 1.0).sin(),
            1 => 2.0 * (i as f64 + 1.0).sin(), // parallel to column 0
            _ => (i as f64).cos(),
        });
        let kept = orthonormalize(&mut y);
        assert_eq!(kept, 2);
        // Kept columns are orthonormal; dropped column zeroed.
        let q0 = y.col(0);
        let q1 = y.col(1);
        assert!((vec_ops::norm2(&q0) - 1.0).abs() < 1e-12);
        assert!((vec_ops::norm2(&q1) - 1.0).abs() < 1e-12);
        assert!(vec_ops::dot(&q0, &q1).abs() < 1e-12);
        assert!(y.col(2).iter().all(|&v| v == 0.0));
    }
}
