//! Dense linear algebra substrate for the Cascadia tsunami digital twin.
//!
//! The paper's Phases 2–4 lean on vendor dense libraries (cuBLAS for batched
//! matmuls, cuSOLVERMp for the Cholesky factorization of the data-space
//! Hessian `K`, cuDSS for sparse prior solves). This crate provides the
//! CPU stand-ins, built from scratch:
//!
//! - [`DMatrix`]: row-major dense matrices with blocked, rayon-parallel
//!   multiplication kernels,
//! - [`RhsPanel`]: the transposed (RHS-major) multi-RHS panel layout that
//!   the batched triangular solves and FFT kernels stream unit-stride,
//! - [`Cholesky`]: blocked right-looking Cholesky factorization with
//!   RHS-major multi-RHS triangular solves,
//! - [`C64`]: complex double arithmetic used by the FFT crate,
//! - [`LinearOperator`]: the matrix-free operator abstraction shared by the
//!   PDE solver, the Toeplitz machinery, and the Bayesian solvers,
//! - [`cg`]: preconditioned conjugate gradients (the state-of-the-art
//!   baseline inversion algorithm of §IV of the paper),
//! - [`random`]: seedable Gaussian sampling (Box–Muller) used for priors,
//!   measurement noise, and randomized diagnostics,
//! - [`svd`]: randomized range finder + truncated SVD (the POD compressor
//!   behind mode-space scenario identification).

// Numeric kernels use index loops that mirror the tensor/math indices
// of the discretizations; enumerate()-style rewrites obscure the formulas.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod cholesky;
pub mod complex;
pub mod eigen;
pub mod factored;
pub mod matrix;
pub mod operator;
pub mod random;
pub mod rhs_panel;
pub mod svd;
pub mod vec_ops;

pub use cg::{cg_solve, CgOptions, CgResult};
pub use cholesky::Cholesky;
pub use complex::C64;
pub use eigen::{effective_rank, symmetric_eigen, symmetric_eigenvalues};
pub use factored::FactoredMap;
pub use matrix::DMatrix;
pub use operator::{DenseOperator, DiagonalOperator, IdentityOperator, LinearOperator};
pub use rhs_panel::RhsPanel;
pub use svd::{energy_rank, randomized_svd, SvdOptions, TruncatedSvd};
