//! Blocked Cholesky factorization and triangular solves.
//!
//! The paper factorizes the dense, symmetric data-space Hessian
//! `K = Γnoise + F G*` (dimension `Nd·Nt`) with cuSOLVERMp in 22 s on 25
//! GPUs. This module is the CPU stand-in: a right-looking blocked
//! factorization whose trailing-matrix update (the GEMM-rich part that
//! dominates flops) is parallelized with rayon, plus forward/backward
//! substitution with multiple right-hand sides.

use crate::matrix::DMatrix;
use rayon::prelude::*;

/// Block size for the panel factorization. The trailing update works on
/// `NB × NB` tiles.
const NB: usize = 64;

/// Panel width for the multi-RHS triangular solves: right-hand sides
/// handled per traversal of the factor. Wide enough to amortize the
/// factor loads (the backward sweep's column-strided reads especially),
/// narrow enough that a `Nd·Nt`-sized panel row stays cache-resident and
/// that typical batches still split into several parallel panels.
const SOLVE_PANEL: usize = 32;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
pub struct Cholesky {
    /// `n × n` matrix whose lower triangle holds `L` (upper triangle is
    /// whatever the input held; never read).
    l: DMatrix,
}

/// Error raised when the matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that failed.
    pub pivot: usize,
    /// Value of the failing pivot before the sqrt.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite: pivot {} = {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factor a symmetric positive definite matrix. Only the lower triangle
    /// of `a` is read.
    ///
    /// # Example
    ///
    /// ```
    /// use tsunami_linalg::{Cholesky, DMatrix};
    /// // A small SPD matrix.
    /// let mut a = DMatrix::from_fn(3, 3, |i, j| if i == j { 4.0 } else { 1.0 });
    /// let ch = Cholesky::factor(&a).unwrap();
    /// let x = ch.solve(&[6.0, 6.0, 6.0]);
    /// // A x = b with b = 6·1 and row sums 6 gives x = 1.
    /// for v in x {
    ///     assert!((v - 1.0).abs() < 1e-12);
    /// }
    /// a[(0, 0)] = -1.0; // no longer positive definite
    /// assert!(Cholesky::factor(&a).is_err());
    /// ```
    pub fn factor(a: &DMatrix) -> Result<Cholesky, NotPositiveDefinite> {
        assert_eq!(a.nrows(), a.ncols(), "cholesky: square only");
        let mut l = a.clone();
        let n = l.nrows();

        for k0 in (0..n).step_by(NB) {
            let k1 = (k0 + NB).min(n);
            // 1. Unblocked factorization of the diagonal block A[k0..k1, k0..k1].
            for j in k0..k1 {
                let mut d = l[(j, j)];
                for p in k0..j {
                    d -= l[(j, p)] * l[(j, p)];
                }
                if d <= 0.0 || !d.is_finite() {
                    return Err(NotPositiveDefinite { pivot: j, value: d });
                }
                let djj = d.sqrt();
                l[(j, j)] = djj;
                for i in (j + 1)..k1 {
                    let mut s = l[(i, j)];
                    for p in k0..j {
                        s -= l[(i, p)] * l[(j, p)];
                    }
                    l[(i, j)] = s / djj;
                }
            }
            if k1 == n {
                break;
            }
            // 2. Panel solve: L[k1.., k0..k1] ← A[k1.., k0..k1] · L[k0..k1,k0..k1]^{-T},
            //    parallel over rows (each row is an independent triangular solve).
            {
                // Copy the diagonal block to avoid aliasing inside the parallel loop.
                let mut diag = vec![0.0; (k1 - k0) * (k1 - k0)];
                for i in k0..k1 {
                    for j in k0..=i {
                        diag[(i - k0) * (k1 - k0) + (j - k0)] = l[(i, j)];
                    }
                }
                let nb = k1 - k0;
                let ncols = l.ncols();
                let data = l.as_mut_slice();
                let (_, below) = data.split_at_mut(k1 * ncols);
                below.par_chunks_mut(ncols).for_each(|row| {
                    for j in 0..nb {
                        let mut s = row[k0 + j];
                        for p in 0..j {
                            s -= row[k0 + p] * diag[j * nb + p];
                        }
                        row[k0 + j] = s / diag[j * nb + j];
                    }
                });
            }
            // 3. Trailing update: A[k1.., k1..] ← A[k1.., k1..] − P · Pᵀ with
            //    P = L[k1.., k0..k1]; only the lower triangle is maintained.
            {
                let nb = k1 - k0;
                let ncols = l.ncols();
                // Snapshot the panel (rows k1..n, cols k0..k1).
                let panel: Vec<f64> = (k1..n)
                    .flat_map(|i| (k0..k1).map(move |j| (i, j)))
                    .map(|(i, j)| l[(i, j)])
                    .collect();
                let data = l.as_mut_slice();
                let (_, below) = data.split_at_mut(k1 * ncols);
                below
                    .par_chunks_mut(ncols)
                    .enumerate()
                    .for_each(|(ri, row)| {
                        let pi = &panel[ri * nb..(ri + 1) * nb];
                        // Update columns k1..=k1+ri (lower triangle of the trailing block).
                        for cj in 0..=ri {
                            let pj = &panel[cj * nb..(cj + 1) * nb];
                            let mut s = 0.0;
                            for p in 0..nb {
                                s += pi[p] * pj[p];
                            }
                            row[k1 + cj] -= s;
                        }
                    });
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the factor (lower triangle valid).
    pub fn factor_matrix(&self) -> &DMatrix {
        &self.l
    }

    /// Solve `A x = b` in place (`b` is overwritten with `x`).
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve: rhs dim");
        // Forward: L y = b
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= self.l[(j, i)] * b[j];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solve `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solve `A X = B` for a multi-RHS block. `B` is `n × nrhs`; returns
    /// `X` of the same shape.
    ///
    /// Columns are processed in panels of `SOLVE_PANEL` right-hand sides:
    /// within a panel one forward/backward sweep walks the factor *once*
    /// and applies each `L_ij` to the whole panel row, so factor loads are
    /// amortized across the batch instead of being re-paid per RHS. Panels
    /// run in parallel.
    pub fn solve_multi(&self, b: &DMatrix) -> DMatrix {
        assert_eq!(b.nrows(), self.dim(), "solve_multi: rhs rows");
        self.solve_leading_multi(self.dim(), b)
    }

    /// Solve `A X = B` in place on a row-major multi-RHS block: one
    /// forward sweep (`L Y = B`) and one backward sweep (`Lᵀ X = Y`), each
    /// walking the factor once for all columns.
    pub fn solve_multi_in_place(&self, b: &mut DMatrix) {
        self.solve_lower_multi_in_place(b);
        self.solve_upper_multi_in_place(b);
    }

    /// Forward substitution `L Y = B` in place for a multi-RHS block
    /// (`B` is `n × nrhs`, row-major, so each factor entry streams across
    /// a contiguous panel row). The multi-RHS analogue of
    /// [`Self::solve_lower_in_place`].
    pub fn solve_lower_multi_in_place(&self, b: &mut DMatrix) {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "solve_lower_multi: rhs rows");
        self.solve_lower_multi_leading(n, b);
    }

    /// Forward sweep restricted to the leading `k × k` block of the factor
    /// (`b` is `k × nrhs`).
    fn solve_lower_multi_leading(&self, k: usize, b: &mut DMatrix) {
        let nrhs = b.ncols();
        let data = b.as_mut_slice();
        for i in 0..k {
            let lrow = self.l.row(i);
            let (done, rest) = data.split_at_mut(i * nrhs);
            let bi = &mut rest[..nrhs];
            for (j, &lij) in lrow[..i].iter().enumerate() {
                if lij == 0.0 {
                    continue;
                }
                let bj = &done[j * nrhs..(j + 1) * nrhs];
                for (x, &y) in bi.iter_mut().zip(bj) {
                    *x -= lij * y;
                }
            }
            // Divide (don't multiply by a reciprocal): keeps every column
            // bit-identical to the single-RHS sweep, so B=1 wrappers and
            // leading-window solves agree to the last ulp.
            let piv = lrow[i];
            for x in bi.iter_mut() {
                *x /= piv;
            }
        }
    }

    /// Backward substitution `Lᵀ X = Y` in place for a multi-RHS block.
    /// The column-strided loads of `L_ji` are paid once per factor entry
    /// and amortized over the panel width.
    fn solve_upper_multi_in_place(&self, b: &mut DMatrix) {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "solve_upper_multi: rhs rows");
        self.solve_upper_multi_leading(n, b);
    }

    /// Backward sweep restricted to the leading `k × k` block of the factor
    /// (`b` is `k × nrhs`).
    fn solve_upper_multi_leading(&self, k: usize, b: &mut DMatrix) {
        let nrhs = b.ncols();
        let data = b.as_mut_slice();
        for i in (0..k).rev() {
            let (head, tail) = data.split_at_mut((i + 1) * nrhs);
            let bi = &mut head[i * nrhs..];
            for j in (i + 1)..k {
                let lji = self.l[(j, i)];
                if lji == 0.0 {
                    continue;
                }
                let bj = &tail[(j - i - 1) * nrhs..(j - i) * nrhs];
                for (x, &y) in bi.iter_mut().zip(bj) {
                    *x -= lji * y;
                }
            }
            let piv = self.l[(i, i)];
            for x in bi.iter_mut() {
                *x /= piv;
            }
        }
    }

    /// Forward substitution only: solve `L y = b` in place. Used by
    /// whitening transforms and sampling.
    pub fn solve_lower_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n);
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
    }

    /// Apply the factor: `y = L x`. With `x ~ N(0, I)` this yields
    /// `y ~ N(0, A)` — the sampling primitive for Gaussian posteriors.
    pub fn apply_lower(&self, x: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = 0.0;
            for j in 0..=i {
                s += row[j] * x[j];
            }
            y[i] = s;
        }
        y
    }

    /// Log-determinant `log det A = 2 Σ log L_ii`. Used for evidence
    /// computations and diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solve `A[..k, ..k] x = b` using only the leading `k × k` block of
    /// the factor — valid because the leading principal submatrix of `L`
    /// *is* the Cholesky factor of the leading principal submatrix of `A`.
    ///
    /// This is what makes streaming early warning cheap: the data-space
    /// Hessian for a truncated observation window is a leading principal
    /// block of the full `K` (data are ordered time-major), so one offline
    /// factorization serves every window length.
    pub fn solve_leading_in_place(&self, k: usize, b: &mut [f64]) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.len(), k, "solve_leading: rhs dim");
        for i in 0..k {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
        for i in (0..k).rev() {
            let mut s = b[i];
            for j in (i + 1)..k {
                s -= self.l[(j, i)] * b[j];
            }
            b[i] = s / self.l[(i, i)];
        }
    }

    /// Solve `A[..k, ..k] X = B` in place for a multi-RHS block restricted
    /// to the leading `k × k` principal block (`b` is `k × nrhs`). The
    /// multi-RHS analogue of [`Self::solve_leading_in_place`]: one forward
    /// and one backward sweep each walk the truncated factor *once* for the
    /// whole panel, so a batch of truncated-window right-hand sides pays a
    /// single factor traversal instead of one per stream. Pivot division is
    /// retained, so every column stays bit-identical to the single-RHS
    /// leading solve.
    pub fn solve_leading_multi_in_place(&self, k: usize, b: &mut DMatrix) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.nrows(), k, "solve_leading_multi: rhs rows");
        self.solve_lower_multi_leading(k, b);
        self.solve_upper_multi_leading(k, b);
    }

    /// Solve `A[..k, ..k] X = B` for a multi-RHS block, returning `X`.
    /// Columns are processed in panels exactly like [`Self::solve_multi`]
    /// (narrowed when the thread pool is wider than the batch), each panel
    /// solved against the leading block by
    /// [`Self::solve_leading_multi_in_place`]; panels run in parallel.
    pub fn solve_leading_multi(&self, k: usize, b: &DMatrix) -> DMatrix {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.nrows(), k, "solve_leading_multi: rhs rows");
        let nrhs = b.ncols();
        let threads = rayon::current_num_threads().max(1);
        let panel = SOLVE_PANEL.min(nrhs.div_ceil(threads)).max(1);
        if nrhs <= panel {
            let mut x = b.clone();
            self.solve_leading_multi_in_place(k, &mut x);
            return x;
        }
        let mut x = DMatrix::zeros(k, nrhs);
        let bounds: Vec<usize> = (0..nrhs).step_by(panel).collect();
        let panels: Vec<DMatrix> = bounds
            .par_iter()
            .map(|&j0| {
                let j1 = (j0 + panel).min(nrhs);
                let mut p = b.col_panel(j0, j1);
                self.solve_leading_multi_in_place(k, &mut p);
                p
            })
            .collect();
        for (&j0, p) in bounds.iter().zip(&panels) {
            x.set_col_panel(j0, p);
        }
        x
    }

    /// Forward substitution on the leading block only: `L[..k,..k] y = b`.
    pub fn solve_lower_leading_in_place(&self, k: usize, b: &mut [f64]) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.len(), k);
        for i in 0..k {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random SPD matrix A = M Mᵀ + n·I.
    fn spd(n: usize, seed: u64) -> DMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let m = DMatrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.shift_diag(n as f64 * 0.1 + 1.0);
        a.symmetrize();
        a
    }

    #[test]
    fn reconstructs_matrix() {
        for &n in &[1, 2, 5, 63, 64, 65, 130] {
            let a = spd(n, n as u64);
            let ch = Cholesky::factor(&a).unwrap();
            // Rebuild L·Lᵀ from the lower triangle only.
            let mut l = DMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    l[(i, j)] = ch.factor_matrix()[(i, j)];
                }
            }
            let rec = l.matmul_nt(&l);
            let mut diff = rec;
            diff.add_scaled(-1.0, &a);
            assert!(
                diff.norm_fro() < 1e-10 * a.norm_fro(),
                "reconstruction failed at n={n}: {}",
                diff.norm_fro()
            );
        }
    }

    #[test]
    fn solve_residual_small() {
        let n = 97;
        let a = spd(n, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = ch.solve(&b);
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        crate::vec_ops::axpy(-1.0, &b, &mut r);
        assert!(crate::vec_ops::norm2(&r) < 1e-9 * crate::vec_ops::norm2(&b));
    }

    #[test]
    fn solve_multi_matches_single() {
        let n = 40;
        let a = spd(n, 4);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 7, |i, j| ((i * 7 + j) as f64 * 0.11).cos());
        let x = ch.solve_multi(&b);
        for j in 0..7 {
            let xj = ch.solve(&b.col(j));
            for i in 0..n {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_multi_matches_single_across_panel_boundary() {
        // Widths straddling SOLVE_PANEL exercise both the single-panel
        // fast path and the panel-parallel decomposition (including a
        // ragged final panel).
        let n = 53;
        let a = spd(n, 13);
        let ch = Cholesky::factor(&a).unwrap();
        for &nrhs in &[1usize, 31, 32, 33, 70] {
            let b = DMatrix::from_fn(n, nrhs, |i, j| ((i * 3 + 5 * j) as f64 * 0.17).sin());
            let x = ch.solve_multi(&b);
            for j in 0..nrhs {
                let xj = ch.solve(&b.col(j));
                for i in 0..n {
                    assert!(
                        (x[(i, j)] - xj[i]).abs() < 1e-11,
                        "nrhs={nrhs} col {j} row {i}: {} vs {}",
                        x[(i, j)],
                        xj[i]
                    );
                }
            }
        }
    }

    #[test]
    fn solve_lower_multi_matches_single() {
        let n = 41;
        let a = spd(n, 8);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 9, |i, j| ((i + 11 * j) as f64 * 0.23).cos());
        let mut y = b.clone();
        ch.solve_lower_multi_in_place(&mut y);
        for j in 0..9 {
            let mut yj = b.col(j);
            ch.solve_lower_in_place(&mut yj);
            for i in 0..n {
                assert!((y[(i, j)] - yj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_multi_in_place_matches_solve_multi() {
        let n = 37;
        let a = spd(n, 17);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 12, |i, j| ((2 * i + j) as f64 * 0.31).sin());
        let x1 = ch.solve_multi(&b);
        let mut x2 = b;
        ch.solve_multi_in_place(&mut x2);
        for i in 0..n {
            for j in 0..12 {
                assert!((x1[(i, j)] - x2[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = DMatrix::identity(4);
        a[(2, 2)] = -1.0;
        assert!(matches!(
            Cholesky::factor(&a),
            Err(NotPositiveDefinite { pivot: 2, .. })
        ));
    }

    #[test]
    fn log_det_of_diagonal() {
        let mut a = DMatrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        a[(2, 2)] = 4.0;
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_leading_matches_subfactor() {
        // Factor the full matrix once, then check that solve_leading(k, ·)
        // equals a fresh factorization of the leading k×k block.
        let n = 57;
        let a = spd(n, 11);
        let ch = Cholesky::factor(&a).unwrap();
        for &k in &[1usize, 2, 13, 40, 57] {
            let sub = DMatrix::from_fn(k, k, |i, j| a[(i, j)]);
            let ch_sub = Cholesky::factor(&sub).unwrap();
            let b: Vec<f64> = (0..k).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
            let x_ref = ch_sub.solve(&b);
            let mut x = b.clone();
            ch.solve_leading_in_place(k, &mut x);
            for (u, v) in x.iter().zip(&x_ref) {
                assert!(
                    (u - v).abs() < 1e-10 * v.abs().max(1e-12),
                    "k={k}: {u} vs {v}"
                );
            }
        }
    }

    #[test]
    fn solve_leading_full_width_equals_solve() {
        let n = 33;
        let a = spd(n, 21);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let x_full = ch.solve(&b);
        let mut x = b.clone();
        ch.solve_leading_in_place(n, &mut x);
        for (u, v) in x.iter().zip(&x_full) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn solve_leading_multi_matches_single_leading() {
        // Every column of the leading-block panel solve must be
        // bit-compatible with the single-RHS leading solve, across widths
        // straddling SOLVE_PANEL and truncation depths straddling NB.
        let n = 97;
        let a = spd(n, 29);
        let ch = Cholesky::factor(&a).unwrap();
        for &k in &[1usize, 17, 64, 97] {
            for &nrhs in &[1usize, 31, 32, 33, 70] {
                let b = DMatrix::from_fn(k, nrhs, |i, j| ((i * 7 + 3 * j) as f64 * 0.13).sin());
                let x = ch.solve_leading_multi(k, &b);
                let mut x2 = b.clone();
                ch.solve_leading_multi_in_place(k, &mut x2);
                for j in 0..nrhs {
                    let mut xj = b.col(j);
                    ch.solve_leading_in_place(k, &mut xj);
                    for i in 0..k {
                        assert!(
                            (x[(i, j)] - xj[i]).abs() < 1e-11,
                            "k={k} nrhs={nrhs} col {j} row {i}"
                        );
                        assert_eq!(x2[(i, j)], x[(i, j)], "in-place vs panel split");
                    }
                }
            }
        }
    }

    #[test]
    fn solve_leading_multi_full_width_equals_solve_multi() {
        let n = 41;
        let a = spd(n, 33);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 9, |i, j| ((i + 13 * j) as f64 * 0.27).cos());
        let x1 = ch.solve_multi(&b);
        let x2 = ch.solve_leading_multi(n, &b);
        for i in 0..n {
            for j in 0..9 {
                assert!((x1[(i, j)] - x2[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn solve_lower_leading_matches_subfactor_forward() {
        let n = 29;
        let a = spd(n, 5);
        let ch = Cholesky::factor(&a).unwrap();
        let k = 17;
        let sub = DMatrix::from_fn(k, k, |i, j| a[(i, j)]);
        let ch_sub = Cholesky::factor(&sub).unwrap();
        let b: Vec<f64> = (0..k).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut y1 = b.clone();
        ch.solve_lower_leading_in_place(k, &mut y1);
        let mut y2 = b;
        ch_sub.solve_lower_in_place(&mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_lower_then_solve_lower_roundtrips() {
        let n = 31;
        let a = spd(n, 9);
        let ch = Cholesky::factor(&a).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut y = ch.apply_lower(&x);
        ch.solve_lower_in_place(&mut y);
        for (u, v) in y.iter().zip(&x) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
