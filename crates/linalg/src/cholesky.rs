//! Blocked Cholesky factorization and triangular solves.
//!
//! The paper factorizes the dense, symmetric data-space Hessian
//! `K = Γnoise + F G*` (dimension `Nd·Nt`) with cuSOLVERMp in 22 s on 25
//! GPUs. This module is the CPU stand-in: a right-looking blocked
//! factorization whose trailing-matrix update (the GEMM-rich part that
//! dominates flops) is parallelized with rayon, plus forward/backward
//! substitution with multiple right-hand sides.
//!
//! Multi-RHS solves run **RHS-major**: each panel of right-hand sides is
//! transposed once into an [`RhsPanel`] (one RHS per contiguous row), the
//! forward sweep is a unit-stride dot of factor-row against RHS-row
//! prefixes, and the backward sweep is column-oriented so it streams
//! factor *rows* instead of walking stride-`n` factor columns. A batch of
//! one falls back to the scalar sweeps, bit-identically.

use crate::matrix::DMatrix;
use crate::rhs_panel::RhsPanel;
use crate::vec_ops;
use rayon::prelude::*;

/// Block size for the panel factorization. The trailing update works on
/// `NB × NB` tiles.
const NB: usize = 64;

/// Panel width for the multi-RHS triangular solves: right-hand sides
/// (RHS-major panel *rows*) handled per traversal of the factor. Wide
/// enough that a serial batch of 64 streams walks the factor once (the
/// factor stream dominates once it outgrows L2), narrow enough that a
/// panel of `Nd·Nt`-long rows stays L2-resident; multi-thread runs still
/// split panels down to `nrhs / threads`.
const SOLVE_PANEL: usize = 64;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
pub struct Cholesky {
    /// `n × n` matrix whose lower triangle holds `L` and whose strict
    /// upper triangle holds the mirror `Lᵀ` (filled once at factor time),
    /// so backward sweeps read contiguous rows — `l[(i, j)] = L[j][i]` for
    /// `j > i` — instead of walking stride-`n` columns.
    l: DMatrix,
}

/// Error raised when the matrix is not (numerically) positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Index of the pivot that failed.
    pub pivot: usize,
    /// Value of the failing pivot before the sqrt.
    pub value: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix not positive definite: pivot {} = {:.3e}",
            self.pivot, self.value
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

impl Cholesky {
    /// Factor a symmetric positive definite matrix. Only the lower triangle
    /// of `a` is read.
    ///
    /// # Example
    ///
    /// ```
    /// use tsunami_linalg::{Cholesky, DMatrix};
    /// // A small SPD matrix.
    /// let mut a = DMatrix::from_fn(3, 3, |i, j| if i == j { 4.0 } else { 1.0 });
    /// let ch = Cholesky::factor(&a).unwrap();
    /// let x = ch.solve(&[6.0, 6.0, 6.0]);
    /// // A x = b with b = 6·1 and row sums 6 gives x = 1.
    /// for v in x {
    ///     assert!((v - 1.0).abs() < 1e-12);
    /// }
    /// a[(0, 0)] = -1.0; // no longer positive definite
    /// assert!(Cholesky::factor(&a).is_err());
    /// ```
    pub fn factor(a: &DMatrix) -> Result<Cholesky, NotPositiveDefinite> {
        assert_eq!(a.nrows(), a.ncols(), "cholesky: square only");
        let mut l = a.clone();
        let n = l.nrows();

        for k0 in (0..n).step_by(NB) {
            let k1 = (k0 + NB).min(n);
            // 1. Unblocked factorization of the diagonal block A[k0..k1, k0..k1].
            for j in k0..k1 {
                let mut d = l[(j, j)];
                for p in k0..j {
                    d -= l[(j, p)] * l[(j, p)];
                }
                if d <= 0.0 || !d.is_finite() {
                    return Err(NotPositiveDefinite { pivot: j, value: d });
                }
                let djj = d.sqrt();
                l[(j, j)] = djj;
                for i in (j + 1)..k1 {
                    let mut s = l[(i, j)];
                    for p in k0..j {
                        s -= l[(i, p)] * l[(j, p)];
                    }
                    l[(i, j)] = s / djj;
                }
            }
            if k1 == n {
                break;
            }
            // 2. Panel solve: L[k1.., k0..k1] ← A[k1.., k0..k1] · L[k0..k1,k0..k1]^{-T},
            //    parallel over rows (each row is an independent triangular solve).
            {
                // Copy the diagonal block to avoid aliasing inside the parallel loop.
                let mut diag = vec![0.0; (k1 - k0) * (k1 - k0)];
                for i in k0..k1 {
                    for j in k0..=i {
                        diag[(i - k0) * (k1 - k0) + (j - k0)] = l[(i, j)];
                    }
                }
                let nb = k1 - k0;
                let ncols = l.ncols();
                let data = l.as_mut_slice();
                let (_, below) = data.split_at_mut(k1 * ncols);
                below.par_chunks_mut(ncols).for_each(|row| {
                    for j in 0..nb {
                        let mut s = row[k0 + j];
                        for p in 0..j {
                            s -= row[k0 + p] * diag[j * nb + p];
                        }
                        row[k0 + j] = s / diag[j * nb + j];
                    }
                });
            }
            // 3. Trailing update: A[k1.., k1..] ← A[k1.., k1..] − P · Pᵀ with
            //    P = L[k1.., k0..k1]; only the lower triangle is maintained.
            {
                let nb = k1 - k0;
                let ncols = l.ncols();
                // Snapshot the panel (rows k1..n, cols k0..k1).
                let panel: Vec<f64> = (k1..n)
                    .flat_map(|i| (k0..k1).map(move |j| (i, j)))
                    .map(|(i, j)| l[(i, j)])
                    .collect();
                let data = l.as_mut_slice();
                let (_, below) = data.split_at_mut(k1 * ncols);
                below
                    .par_chunks_mut(ncols)
                    .enumerate()
                    .for_each(|(ri, row)| {
                        let pi = &panel[ri * nb..(ri + 1) * nb];
                        // Update columns k1..=k1+ri (lower triangle of the trailing block).
                        for cj in 0..=ri {
                            let pj = &panel[cj * nb..(cj + 1) * nb];
                            let mut s = 0.0;
                            for p in 0..nb {
                                s += pi[p] * pj[p];
                            }
                            row[k1 + cj] -= s;
                        }
                    });
            }
        }
        // Mirror the factor into the strict upper triangle (l[(i, j)] =
        // L[j][i] for j > i): an O(n²) one-time cost that lets every
        // backward sweep — scalar and panel alike — stream contiguous
        // factor rows instead of stride-n columns.
        for i in 0..n {
            for j in (i + 1)..n {
                l[(i, j)] = l[(j, i)];
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Borrow the factor (lower triangle holds `L`, strict upper triangle
    /// its mirror `Lᵀ`).
    pub fn factor_matrix(&self) -> &DMatrix {
        &self.l
    }

    /// Solve `A x = b` in place (`b` is overwritten with `x`).
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve: rhs dim");
        // Forward: L y = b
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
        // Backward: Lᵀ x = y. Reads L[j][i] from the mirrored upper
        // triangle — same values, same subtraction order as the column
        // walk (bit-identical), but unit-stride.
        for i in (0..n).rev() {
            let row = self.l.row(i);
            let mut s = b[i];
            for j in (i + 1)..n {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
    }

    /// Solve `A x = b`, returning a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }

    /// Solve `A X = B` for a multi-RHS block. `B` is `n × nrhs`; returns
    /// `X` of the same shape.
    ///
    /// Columns are processed in RHS-major panels of up to `SOLVE_PANEL`
    /// right-hand sides: each panel is transposed **once** into an
    /// [`RhsPanel`] (one RHS per contiguous row), swept forward and
    /// backward with unit-stride microkernels that walk the factor once
    /// per panel, and transposed back. Panels run in parallel. `nrhs = 1`
    /// dispatches to the scalar [`Self::solve_in_place`] path, so B=1
    /// wrappers stay bit-identical to the single-RHS solve.
    pub fn solve_multi(&self, b: &DMatrix) -> DMatrix {
        assert_eq!(b.nrows(), self.dim(), "solve_multi: rhs rows");
        self.solve_leading_multi(self.dim(), b)
    }

    /// Solve `A X = B` in place on an `n × nrhs` block: the whole block
    /// crosses into the RHS-major layout once, is swept forward
    /// (`L Y = B`) and backward (`Lᵀ X = Y`), and crosses back.
    pub fn solve_multi_in_place(&self, b: &mut DMatrix) {
        assert_eq!(b.nrows(), self.dim(), "solve_multi_in_place: rhs rows");
        self.solve_leading_multi_in_place(self.dim(), b);
    }

    /// Forward substitution `L Y = B` in place for an `n × nrhs` block.
    /// The multi-RHS analogue of [`Self::solve_lower_in_place`]: the block
    /// is transposed once into an [`RhsPanel`] and swept RHS-major.
    /// `nrhs = 1` stays on the scalar path (bit-identical).
    pub fn solve_lower_multi_in_place(&self, b: &mut DMatrix) {
        let n = self.dim();
        assert_eq!(b.nrows(), n, "solve_lower_multi: rhs rows");
        if b.ncols() == 1 {
            self.solve_lower_in_place(b.as_mut_slice());
            return;
        }
        let mut p = RhsPanel::from_matrix(b);
        self.forward_leading_rhs_major(n, &mut p);
        p.scatter_cols(b, 0);
    }

    /// Solve `A X = B` in place on an RHS-major panel (one RHS per
    /// contiguous row): one forward and one backward sweep, each walking
    /// the factor once for the whole panel.
    pub fn solve_panel_in_place(&self, p: &mut RhsPanel) {
        self.solve_leading_panel_in_place(self.dim(), p);
    }

    /// Forward substitution `L Y = B` in place on an RHS-major panel.
    pub fn solve_lower_panel_in_place(&self, p: &mut RhsPanel) {
        assert_eq!(p.dim(), self.dim(), "solve_lower_panel: rhs dim");
        self.forward_leading_rhs_major(self.dim(), p);
    }

    /// Solve `A[..k, ..k] X = B` in place on an RHS-major panel whose rows
    /// have length `k` — the panel-native form of
    /// [`Self::solve_leading_multi_in_place`].
    pub fn solve_leading_panel_in_place(&self, k: usize, p: &mut RhsPanel) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(p.dim(), k, "solve_leading_panel: rhs dim");
        self.forward_leading_rhs_major(k, p);
        self.backward_leading_rhs_major(k, p);
    }

    /// RHS-major forward sweep `L[..k,..k] Y = B`: for each pivot row the
    /// update is a *unit-stride* dot of the factor row prefix against the
    /// RHS row prefix ([`vec_ops::dot_lanes`]) — both contiguous — with the
    /// factor row loaded once for all RHS rows. Pivot division (not a
    /// reciprocal multiply) matches the single-RHS sweep.
    fn forward_leading_rhs_major(&self, k: usize, p: &mut RhsPanel) {
        let n = self.l.ncols();
        let ld = self.l.as_slice();
        for i in 0..k {
            let lrow = &ld[i * n..i * n + i];
            let piv = ld[i * n + i];
            for row in p.rows_mut() {
                let s = row[i] - vec_ops::dot_lanes(lrow, &row[..i]);
                row[i] = s / piv;
            }
        }
    }

    /// RHS-major backward sweep `Lᵀ[..k,..k] X = Y`: row `i` of the
    /// mirrored upper triangle *is* row `i` of `Lᵀ`, so each update is a
    /// *unit-stride* dot of two contiguous row suffixes
    /// ([`vec_ops::dot_lanes`]) — the same shape as the forward sweep,
    /// with no store traffic. This replaces the column-major sweep's
    /// stride-`n` walk down column `i` of the factor (the load pattern
    /// the ROADMAP called out).
    fn backward_leading_rhs_major(&self, k: usize, p: &mut RhsPanel) {
        let n = self.l.ncols();
        let ld = self.l.as_slice();
        for i in (0..k).rev() {
            let lrow = &ld[i * n + i + 1..i * n + k];
            let piv = ld[i * n + i];
            for row in p.rows_mut() {
                let s = row[i] - vec_ops::dot_lanes(lrow, &row[i + 1..k]);
                row[i] = s / piv;
            }
        }
    }

    /// Column-major reference for the leading-block multi-RHS solve: the
    /// pre-RHS-major sweeps (factor entries applied across `nrhs`-wide
    /// rows of the untransposed block; backward sweep pays stride-`n`
    /// factor column loads). Retained for equivalence tests and as the
    /// bench baseline the RHS-major path is measured against.
    pub fn solve_leading_multi_colmajor_in_place(&self, k: usize, b: &mut DMatrix) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.nrows(), k, "solve_leading_multi: rhs rows");
        let nrhs = b.ncols();
        let data = b.as_mut_slice();
        for i in 0..k {
            let lrow = self.l.row(i);
            let (done, rest) = data.split_at_mut(i * nrhs);
            let bi = &mut rest[..nrhs];
            for (j, &lij) in lrow[..i].iter().enumerate() {
                if lij == 0.0 {
                    continue;
                }
                let bj = &done[j * nrhs..(j + 1) * nrhs];
                for (x, &y) in bi.iter_mut().zip(bj) {
                    *x -= lij * y;
                }
            }
            let piv = lrow[i];
            for x in bi.iter_mut() {
                *x /= piv;
            }
        }
        for i in (0..k).rev() {
            let (head, tail) = data.split_at_mut((i + 1) * nrhs);
            let bi = &mut head[i * nrhs..];
            for j in (i + 1)..k {
                let lji = self.l[(j, i)];
                if lji == 0.0 {
                    continue;
                }
                let bj = &tail[(j - i - 1) * nrhs..(j - i) * nrhs];
                for (x, &y) in bi.iter_mut().zip(bj) {
                    *x -= lji * y;
                }
            }
            let piv = self.l[(i, i)];
            for x in bi.iter_mut() {
                *x /= piv;
            }
        }
    }

    /// Forward substitution only: solve `L y = b` in place. Used by
    /// whitening transforms and sampling.
    pub fn solve_lower_in_place(&self, b: &mut [f64]) {
        let n = self.dim();
        assert_eq!(b.len(), n);
        for i in 0..n {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
    }

    /// Apply the factor: `y = L x`. With `x ~ N(0, I)` this yields
    /// `y ~ N(0, A)` — the sampling primitive for Gaussian posteriors.
    pub fn apply_lower(&self, x: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(x.len(), n);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut s = 0.0;
            for j in 0..=i {
                s += row[j] * x[j];
            }
            y[i] = s;
        }
        y
    }

    /// Log-determinant `log det A = 2 Σ log L_ii`. Used for evidence
    /// computations and diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Solve `A[..k, ..k] x = b` using only the leading `k × k` block of
    /// the factor — valid because the leading principal submatrix of `L`
    /// *is* the Cholesky factor of the leading principal submatrix of `A`.
    ///
    /// This is what makes streaming early warning cheap: the data-space
    /// Hessian for a truncated observation window is a leading principal
    /// block of the full `K` (data are ordered time-major), so one offline
    /// factorization serves every window length.
    pub fn solve_leading_in_place(&self, k: usize, b: &mut [f64]) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.len(), k, "solve_leading: rhs dim");
        for i in 0..k {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
        // Backward over the mirrored upper triangle (unit-stride,
        // bit-identical to the former column walk).
        for i in (0..k).rev() {
            let row = self.l.row(i);
            let mut s = b[i];
            for j in (i + 1)..k {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
    }

    /// Solve `A[..k, ..k] X = B` in place for a multi-RHS block restricted
    /// to the leading `k × k` principal block (`b` is `k × nrhs`). The
    /// multi-RHS analogue of [`Self::solve_leading_in_place`]: the block
    /// crosses into the RHS-major layout once, one forward and one
    /// backward RHS-major sweep each walk the truncated factor *once* for
    /// the whole panel, and the result crosses back — so a batch of
    /// truncated-window right-hand sides pays a single factor traversal
    /// (and a single layout transpose) instead of one per stream. Pivot
    /// division is retained, and `nrhs = 1` dispatches to the scalar
    /// [`Self::solve_leading_in_place`], so B=1 wrappers stay bit-identical
    /// to the single-RHS leading solve.
    pub fn solve_leading_multi_in_place(&self, k: usize, b: &mut DMatrix) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.nrows(), k, "solve_leading_multi: rhs rows");
        if b.ncols() == 1 {
            self.solve_leading_in_place(k, b.as_mut_slice());
            return;
        }
        let mut p = RhsPanel::from_matrix(b);
        self.solve_leading_panel_in_place(k, &mut p);
        p.scatter_cols(b, 0);
    }

    /// Solve `A[..k, ..k] X = B` for a multi-RHS block, returning `X`.
    /// Columns are processed in RHS-major panels exactly like
    /// [`Self::solve_multi`] (narrowed when the thread pool is wider than
    /// the batch), each panel gathered/scattered across the layout
    /// boundary once and solved by [`Self::solve_leading_panel_in_place`];
    /// panels run in parallel. Because every RHS row is swept
    /// independently, the panel split does not change any column's
    /// arithmetic — the result is bit-identical to the single-panel
    /// in-place solve.
    pub fn solve_leading_multi(&self, k: usize, b: &DMatrix) -> DMatrix {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.nrows(), k, "solve_leading_multi: rhs rows");
        let nrhs = b.ncols();
        if nrhs == 1 {
            let mut x = b.clone();
            self.solve_leading_in_place(k, x.as_mut_slice());
            return x;
        }
        let threads = rayon::current_num_threads().max(1);
        let panel = SOLVE_PANEL.min(nrhs.div_ceil(threads)).max(1);
        if nrhs <= panel {
            let mut p = RhsPanel::from_matrix(b);
            self.solve_leading_panel_in_place(k, &mut p);
            return p.to_matrix();
        }
        let mut x = DMatrix::zeros(k, nrhs);
        let bounds: Vec<usize> = (0..nrhs).step_by(panel).collect();
        let panels: Vec<RhsPanel> = bounds
            .par_iter()
            .map(|&j0| {
                let j1 = (j0 + panel).min(nrhs);
                let mut p = RhsPanel::gather_cols(b, j0, j1);
                self.solve_leading_panel_in_place(k, &mut p);
                p
            })
            .collect();
        for (&j0, p) in bounds.iter().zip(&panels) {
            p.scatter_cols(&mut x, j0);
        }
        x
    }

    /// Forward substitution on the leading block only: `L[..k,..k] y = b`.
    pub fn solve_lower_leading_in_place(&self, k: usize, b: &mut [f64]) {
        assert!(k <= self.dim(), "leading block exceeds dimension");
        assert_eq!(b.len(), k);
        for i in 0..k {
            let mut s = b[i];
            let row = self.l.row(i);
            for j in 0..i {
                s -= row[j] * b[j];
            }
            b[i] = s / row[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random SPD matrix A = M Mᵀ + n·I.
    fn spd(n: usize, seed: u64) -> DMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let m = DMatrix::from_fn(n, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.shift_diag(n as f64 * 0.1 + 1.0);
        a.symmetrize();
        a
    }

    #[test]
    fn reconstructs_matrix() {
        for &n in &[1, 2, 5, 63, 64, 65, 130] {
            let a = spd(n, n as u64);
            let ch = Cholesky::factor(&a).unwrap();
            // Rebuild L·Lᵀ from the lower triangle only.
            let mut l = DMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    l[(i, j)] = ch.factor_matrix()[(i, j)];
                }
            }
            let rec = l.matmul_nt(&l);
            let mut diff = rec;
            diff.add_scaled(-1.0, &a);
            assert!(
                diff.norm_fro() < 1e-10 * a.norm_fro(),
                "reconstruction failed at n={n}: {}",
                diff.norm_fro()
            );
        }
    }

    #[test]
    fn solve_residual_small() {
        let n = 97;
        let a = spd(n, 3);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let x = ch.solve(&b);
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        crate::vec_ops::axpy(-1.0, &b, &mut r);
        assert!(crate::vec_ops::norm2(&r) < 1e-9 * crate::vec_ops::norm2(&b));
    }

    #[test]
    fn solve_multi_matches_single() {
        let n = 40;
        let a = spd(n, 4);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 7, |i, j| ((i * 7 + j) as f64 * 0.11).cos());
        let x = ch.solve_multi(&b);
        for j in 0..7 {
            let xj = ch.solve(&b.col(j));
            for i in 0..n {
                assert!((x[(i, j)] - xj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_multi_matches_single_across_panel_boundary() {
        // Widths straddling SOLVE_PANEL exercise both the single-panel
        // fast path and the panel-parallel decomposition (including a
        // ragged final panel).
        let n = 53;
        let a = spd(n, 13);
        let ch = Cholesky::factor(&a).unwrap();
        for &nrhs in &[1usize, 31, 32, 33, 70] {
            let b = DMatrix::from_fn(n, nrhs, |i, j| ((i * 3 + 5 * j) as f64 * 0.17).sin());
            let x = ch.solve_multi(&b);
            for j in 0..nrhs {
                let xj = ch.solve(&b.col(j));
                for i in 0..n {
                    assert!(
                        (x[(i, j)] - xj[i]).abs() < 1e-11,
                        "nrhs={nrhs} col {j} row {i}: {} vs {}",
                        x[(i, j)],
                        xj[i]
                    );
                }
            }
        }
    }

    #[test]
    fn solve_lower_multi_matches_single() {
        let n = 41;
        let a = spd(n, 8);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 9, |i, j| ((i + 11 * j) as f64 * 0.23).cos());
        let mut y = b.clone();
        ch.solve_lower_multi_in_place(&mut y);
        for j in 0..9 {
            let mut yj = b.col(j);
            ch.solve_lower_in_place(&mut yj);
            for i in 0..n {
                assert!((y[(i, j)] - yj[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_multi_in_place_matches_solve_multi() {
        let n = 37;
        let a = spd(n, 17);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 12, |i, j| ((2 * i + j) as f64 * 0.31).sin());
        let x1 = ch.solve_multi(&b);
        let mut x2 = b;
        ch.solve_multi_in_place(&mut x2);
        for i in 0..n {
            for j in 0..12 {
                assert!((x1[(i, j)] - x2[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn b1_multi_paths_bit_identical_to_scalar() {
        // Every multi-RHS entry point at nrhs = 1 must reproduce the
        // single-RHS solve to the last ulp (the pivot-division path the
        // B=1 wrappers and the golden regression pin).
        let n = 79;
        let a = spd(n, 41);
        let ch = Cholesky::factor(&a).unwrap();
        let bvec: Vec<f64> = (0..n).map(|i| (i as f64 * 0.41).sin()).collect();
        let b = DMatrix::from_vec(n, 1, bvec.clone());

        let x_scalar = ch.solve(&bvec);
        let x_multi = ch.solve_multi(&b);
        let mut x_ip = b.clone();
        ch.solve_multi_in_place(&mut x_ip);
        for i in 0..n {
            assert_eq!(x_multi[(i, 0)], x_scalar[i], "solve_multi row {i}");
            assert_eq!(x_ip[(i, 0)], x_scalar[i], "in-place row {i}");
        }

        let mut y = b.clone();
        ch.solve_lower_multi_in_place(&mut y);
        let mut y_ref = bvec.clone();
        ch.solve_lower_in_place(&mut y_ref);
        for i in 0..n {
            assert_eq!(y[(i, 0)], y_ref[i], "forward row {i}");
        }

        let k = 37;
        let bk = DMatrix::from_vec(k, 1, bvec[..k].to_vec());
        let xk = ch.solve_leading_multi(k, &bk);
        let mut xk_ip = bk.clone();
        ch.solve_leading_multi_in_place(k, &mut xk_ip);
        let mut xk_ref = bvec[..k].to_vec();
        ch.solve_leading_in_place(k, &mut xk_ref);
        for i in 0..k {
            assert_eq!(xk[(i, 0)], xk_ref[i], "leading row {i}");
            assert_eq!(xk_ip[(i, 0)], xk_ref[i], "leading in-place row {i}");
        }
    }

    #[test]
    fn rhs_major_matches_colmajor_reference_across_panel_boundaries() {
        // The RHS-major sweeps against the retained column-major
        // reference, at widths straddling SOLVE_PANEL (ragged final
        // panel included) and truncation depths straddling NB. The two
        // layouts reassociate the update sums, so agreement is to
        // roundoff, not bitwise.
        let n = 97;
        let a = spd(n, 55);
        let ch = Cholesky::factor(&a).unwrap();
        for &k in &[1usize, 17, 64, 97] {
            for &nrhs in &[2usize, 31, 32, 33, 70] {
                let b = DMatrix::from_fn(k, nrhs, |i, j| ((i * 5 + 3 * j) as f64 * 0.23).sin());
                let x = ch.solve_leading_multi(k, &b);
                let mut x_ref = b.clone();
                ch.solve_leading_multi_colmajor_in_place(k, &mut x_ref);
                for i in 0..k {
                    for j in 0..nrhs {
                        assert!(
                            (x[(i, j)] - x_ref[(i, j)]).abs() < 1e-11,
                            "k={k} nrhs={nrhs} ({i},{j}): {} vs {}",
                            x[(i, j)],
                            x_ref[(i, j)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn panel_api_matches_matrix_api_exactly() {
        // The RHS-major panel entry points and the DMatrix wrappers run
        // the same sweeps; crossing the layout boundary must not change a
        // single bit.
        let n = 53;
        let a = spd(n, 61);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 9, |i, j| ((i + 17 * j) as f64 * 0.19).cos());

        let x = ch.solve_multi(&b);
        let mut p = crate::RhsPanel::from_matrix(&b);
        ch.solve_panel_in_place(&mut p);
        assert_eq!(p.to_matrix(), x);

        let mut y = b.clone();
        ch.solve_lower_multi_in_place(&mut y);
        let mut pf = crate::RhsPanel::from_matrix(&b);
        ch.solve_lower_panel_in_place(&mut pf);
        assert_eq!(pf.to_matrix(), y);

        let k = 31;
        let bk = DMatrix::from_fn(k, 9, |i, j| ((i + 3 * j) as f64 * 0.29).sin());
        let xk = ch.solve_leading_multi(k, &bk);
        let mut pk = crate::RhsPanel::from_matrix(&bk);
        ch.solve_leading_panel_in_place(k, &mut pk);
        assert_eq!(pk.to_matrix(), xk);
    }

    #[test]
    fn rejects_indefinite() {
        let mut a = DMatrix::identity(4);
        a[(2, 2)] = -1.0;
        assert!(matches!(
            Cholesky::factor(&a),
            Err(NotPositiveDefinite { pivot: 2, .. })
        ));
    }

    #[test]
    fn log_det_of_diagonal() {
        let mut a = DMatrix::zeros(3, 3);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        a[(2, 2)] = 4.0;
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn solve_leading_matches_subfactor() {
        // Factor the full matrix once, then check that solve_leading(k, ·)
        // equals a fresh factorization of the leading k×k block.
        let n = 57;
        let a = spd(n, 11);
        let ch = Cholesky::factor(&a).unwrap();
        for &k in &[1usize, 2, 13, 40, 57] {
            let sub = DMatrix::from_fn(k, k, |i, j| a[(i, j)]);
            let ch_sub = Cholesky::factor(&sub).unwrap();
            let b: Vec<f64> = (0..k).map(|i| (i as f64 * 0.7).sin() + 0.1).collect();
            let x_ref = ch_sub.solve(&b);
            let mut x = b.clone();
            ch.solve_leading_in_place(k, &mut x);
            for (u, v) in x.iter().zip(&x_ref) {
                assert!(
                    (u - v).abs() < 1e-10 * v.abs().max(1e-12),
                    "k={k}: {u} vs {v}"
                );
            }
        }
    }

    #[test]
    fn solve_leading_full_width_equals_solve() {
        let n = 33;
        let a = spd(n, 21);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
        let x_full = ch.solve(&b);
        let mut x = b.clone();
        ch.solve_leading_in_place(n, &mut x);
        for (u, v) in x.iter().zip(&x_full) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn solve_leading_multi_matches_single_leading() {
        // Every column of the leading-block panel solve must be
        // bit-compatible with the single-RHS leading solve, across widths
        // straddling SOLVE_PANEL and truncation depths straddling NB.
        let n = 97;
        let a = spd(n, 29);
        let ch = Cholesky::factor(&a).unwrap();
        for &k in &[1usize, 17, 64, 97] {
            for &nrhs in &[1usize, 31, 32, 33, 70] {
                let b = DMatrix::from_fn(k, nrhs, |i, j| ((i * 7 + 3 * j) as f64 * 0.13).sin());
                let x = ch.solve_leading_multi(k, &b);
                let mut x2 = b.clone();
                ch.solve_leading_multi_in_place(k, &mut x2);
                for j in 0..nrhs {
                    let mut xj = b.col(j);
                    ch.solve_leading_in_place(k, &mut xj);
                    for i in 0..k {
                        assert!(
                            (x[(i, j)] - xj[i]).abs() < 1e-11,
                            "k={k} nrhs={nrhs} col {j} row {i}"
                        );
                        assert_eq!(x2[(i, j)], x[(i, j)], "in-place vs panel split");
                    }
                }
            }
        }
    }

    #[test]
    fn solve_leading_multi_full_width_equals_solve_multi() {
        let n = 41;
        let a = spd(n, 33);
        let ch = Cholesky::factor(&a).unwrap();
        let b = DMatrix::from_fn(n, 9, |i, j| ((i + 13 * j) as f64 * 0.27).cos());
        let x1 = ch.solve_multi(&b);
        let x2 = ch.solve_leading_multi(n, &b);
        for i in 0..n {
            for j in 0..9 {
                assert!((x1[(i, j)] - x2[(i, j)]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn solve_lower_leading_matches_subfactor_forward() {
        let n = 29;
        let a = spd(n, 5);
        let ch = Cholesky::factor(&a).unwrap();
        let k = 17;
        let sub = DMatrix::from_fn(k, k, |i, j| a[(i, j)]);
        let ch_sub = Cholesky::factor(&sub).unwrap();
        let b: Vec<f64> = (0..k).map(|i| (i as f64 * 1.3).sin()).collect();
        let mut y1 = b.clone();
        ch.solve_lower_leading_in_place(k, &mut y1);
        let mut y2 = b;
        ch_sub.solve_lower_in_place(&mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn apply_lower_then_solve_lower_roundtrips() {
        let n = 31;
        let a = spd(n, 9);
        let ch = Cholesky::factor(&a).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let mut y = ch.apply_lower(&x);
        ch.solve_lower_in_place(&mut y);
        for (u, v) in y.iter().zip(&x) {
            assert!((u - v).abs() < 1e-10);
        }
    }
}
