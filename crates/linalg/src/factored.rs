//! Low-rank factored linear maps `M ≈ L · Rᵀ` for goal-oriented applies.
//!
//! The goal-oriented online path (arXiv:2501.14911) never needs a dense
//! data-to-QoI operator at apply time: it folds arriving data through the
//! small right factor (`z += Rᵀ d`, rank-sized state) and materializes
//! outputs with one small GEMM (`q = L · z`). [`FactoredMap`] is that
//! shape: either a truncated-SVD compression of a dense map with an exact
//! Frobenius residual bound, or an *exact* passthrough (`R = I`, kept
//! implicit) whose apply is bitwise identical to the dense product — the
//! oracle the compressed ranks are validated against.

use crate::matrix::DMatrix;
use crate::svd::{randomized_svd, SvdOptions};

/// A dense map in factored form `M ≈ L · Rᵀ` (`L`: `out × r`,
/// `R`: `in × r`), or the exact map itself with an implicit identity
/// right factor.
pub struct FactoredMap {
    /// Left factor `L` (`out_dim × rank`); for an exact map this is `M`
    /// itself (`rank == in_dim`).
    left: DMatrix,
    /// Right factor `R` (`in_dim × rank`), absent for the exact
    /// passthrough where `Rᵀ d = d` needs no arithmetic at all.
    right: Option<DMatrix>,
}

impl FactoredMap {
    /// The exact map as a degenerate factorization `M · Iᵀ`: folding is a
    /// copy, materialization is the dense product itself — bitwise equal
    /// to [`DMatrix::matmul`] on the original map (the full-rank oracle).
    pub fn exact(map: DMatrix) -> Self {
        FactoredMap {
            left: map,
            right: None,
        }
    }

    /// Compress `map` to rank `rank` with the randomized SVD, absorbing
    /// the singular values into the left factor. Returns the factored map
    /// and its *exactly computed* truncation residual `‖M − L Rᵀ‖_F`
    /// (the spectral error is bounded by it, so for any input `d` the
    /// apply error obeys `‖(M − L Rᵀ) d‖₂ ≤ residual · ‖d‖₂`).
    ///
    /// A requested rank at or above `min(out_dim, in_dim)` falls back to
    /// [`Self::exact`] (residual 0): the SVD could only add roundoff.
    pub fn compress(map: &DMatrix, rank: usize, opts: SvdOptions) -> (Self, f64) {
        assert!(rank >= 1, "factored rank must be at least 1");
        if rank >= map.nrows().min(map.ncols()) {
            return (FactoredMap::exact(map.clone()), 0.0);
        }
        let svd = randomized_svd(map, rank, opts);
        let r = svd.rank();
        // L = U · diag(σ)  (out × r), R = V (in × r).
        let left = DMatrix::from_fn(map.nrows(), r, |i, j| svd.u[(i, j)] * svd.s[j]);
        let right = DMatrix::from_fn(map.ncols(), r, |i, j| svd.vt[(j, i)]);
        let approx = left.matmul_nt(&right);
        let mut residual2 = 0.0;
        for (a, b) in map.as_slice().iter().zip(approx.as_slice()) {
            let d = a - b;
            residual2 += d * d;
        }
        (
            FactoredMap {
                left,
                right: Some(right),
            },
            residual2.sqrt(),
        )
    }

    /// Output dimension of the map.
    pub fn out_dim(&self) -> usize {
        self.left.nrows()
    }

    /// Input dimension of the map.
    pub fn in_dim(&self) -> usize {
        self.right.as_ref().map_or(self.left.ncols(), |r| r.nrows())
    }

    /// Factor rank `r` — the per-stream fold-state length (`in_dim` for
    /// the exact passthrough).
    pub fn rank(&self) -> usize {
        self.left.ncols()
    }

    /// True for the exact passthrough (`R = I`, residual 0).
    pub fn is_exact(&self) -> bool {
        self.right.is_none()
    }

    /// The left factor `L` (`out_dim × rank`).
    pub fn left(&self) -> &DMatrix {
        &self.left
    }

    /// The right factor `R` (`in_dim × rank`); `None` for the exact
    /// passthrough whose fold is a plain copy.
    pub fn right(&self) -> Option<&DMatrix> {
        self.right.as_ref()
    }

    /// Fold a block of inputs into rank space: `Z = Rᵀ X` (`rank × B`).
    pub fn fold(&self, x: &DMatrix) -> DMatrix {
        match &self.right {
            Some(r) => r.matmul_tn(x),
            None => x.clone(),
        }
    }

    /// Materialize outputs from folded state: `Q = L · Z`, written into a
    /// caller-owned `out_dim × B` block ([`DMatrix::matmul_into`], so the
    /// exact passthrough is bitwise the dense product).
    pub fn materialize_into(&self, z: &DMatrix, q: &mut DMatrix) {
        self.left.matmul_into(z, q);
    }

    /// Apply the factored map to a block: `Q ≈ M X`.
    pub fn apply(&self, x: &DMatrix) -> DMatrix {
        let z = self.fold(x);
        let mut q = DMatrix::zeros(self.out_dim(), x.ncols());
        self.materialize_into(&z, &mut q);
        q
    }

    /// Resident elements of the factored form, `r · (out + in)` for a
    /// compressed map and `out · in` for the exact passthrough — the
    /// working-set figure the offline/online split is sized by.
    pub fn resident_elems(&self) -> usize {
        self.left.nrows() * self.left.ncols()
            + self.right.as_ref().map_or(0, |r| r.nrows() * r.ncols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_map(rows: usize, cols: usize) -> DMatrix {
        // Rapidly decaying spectrum: a sum of a few smooth outer products
        // plus a tiny rough tail, so truncation is meaningful.
        DMatrix::from_fn(rows, cols, |i, j| {
            let (x, y) = (i as f64 / rows as f64, j as f64 / cols as f64);
            (6.3 * x).sin() * (3.1 * y).cos()
                + 0.3 * (12.0 * x).cos() * (9.0 * y).sin()
                + 1e-6 * ((i * 31 + j * 17) as f64).sin()
        })
    }

    #[test]
    fn exact_apply_is_bitwise_the_dense_product() {
        let m = smooth_map(23, 40);
        let x = DMatrix::from_fn(40, 7, |i, j| ((i * 3 + j) as f64 * 0.17).sin());
        let f = FactoredMap::exact(m.clone());
        assert!(f.is_exact());
        assert_eq!(f.rank(), 40);
        assert_eq!(f.apply(&x).as_slice(), m.matmul(&x).as_slice());
    }

    #[test]
    fn compressed_apply_error_stays_within_the_residual_bound() {
        let m = smooth_map(30, 50);
        let x = DMatrix::from_fn(50, 5, |i, j| ((i + 7 * j) as f64 * 0.23).cos());
        for rank in [1usize, 2, 4, 8] {
            let (f, residual) = FactoredMap::compress(&m, rank, SvdOptions::default());
            assert_eq!(f.out_dim(), 30);
            assert_eq!(f.in_dim(), 50);
            assert!(f.rank() <= rank);
            let q = f.apply(&x);
            let dense = m.matmul(&x);
            for j in 0..x.ncols() {
                let dn: f64 = (0..50).map(|i| x[(i, j)] * x[(i, j)]).sum::<f64>().sqrt();
                let en: f64 = (0..30)
                    .map(|i| {
                        let d = q[(i, j)] - dense[(i, j)];
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt();
                assert!(
                    en <= residual * dn + 1e-12,
                    "rank {rank} col {j}: error {en} exceeds bound {}",
                    residual * dn
                );
            }
        }
    }

    #[test]
    fn residual_shrinks_with_rank_and_full_rank_is_exact() {
        let m = smooth_map(20, 35);
        let mut prev = f64::INFINITY;
        for rank in [1usize, 3, 6, 12] {
            let (_, residual) = FactoredMap::compress(&m, rank, SvdOptions::default());
            assert!(residual <= prev + 1e-12, "residual must not grow with rank");
            prev = residual;
        }
        let (f, residual) = FactoredMap::compress(&m, 20, SvdOptions::default());
        assert!(f.is_exact(), "rank ≥ min dim must fall back to exact");
        assert_eq!(residual, 0.0);
    }

    #[test]
    fn resident_elems_counts_the_factored_working_set() {
        let m = smooth_map(24, 48);
        let (f, _) = FactoredMap::compress(&m, 4, SvdOptions::default());
        assert_eq!(f.resident_elems(), f.rank() * (24 + 48));
        let e = FactoredMap::exact(m);
        assert_eq!(e.resident_elems(), 24 * 48);
    }
}
