//! Symmetric eigenvalue computation by cyclic Jacobi rotations.
//!
//! Used by the `rank_structure` experiment to compute the spectrum of the
//! prior-preconditioned data-misfit Hessian — the quantity whose *failure*
//! to be low-rank (§IV of the paper) is what rules out the usual
//! low-rank-update posterior approximations and motivates the paper's
//! data-space approach. Cyclic Jacobi is O(n³) per sweep and converges
//! quadratically; fine for the few-hundred-dimensional diagnostics here.

use crate::matrix::DMatrix;

/// Eigenvalues of a symmetric matrix, descending. `a` is consumed by
/// value (it gets rotated in place internally).
pub fn symmetric_eigenvalues(mut a: DMatrix, tol: f64, max_sweeps: usize) -> Vec<f64> {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigen: square only");
    for _ in 0..max_sweeps {
        let off = off_diag_norm(&a);
        if off <= tol * a.norm_fro().max(1e-300) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                jacobi_rotate(&mut a, p, q, None);
            }
        }
    }
    let mut eig = a.diag();
    eig.sort_by(|x, y| y.partial_cmp(x).unwrap());
    eig
}

/// Full symmetric eigendecomposition `A = V Λ Vᵀ` by cyclic Jacobi:
/// eigenvalues descending, with the matching orthonormal eigenvectors as
/// the *columns* of the returned matrix. The rotations that diagonalize
/// `A` are accumulated into `V` (`V ← V·J` per rotation), so `V` is
/// orthogonal to the same tolerance the sweep converges to. This is what
/// the randomized SVD ([`crate::svd`]) uses on its small Gram matrix.
pub fn symmetric_eigen(mut a: DMatrix, tol: f64, max_sweeps: usize) -> (Vec<f64>, DMatrix) {
    let n = a.nrows();
    assert_eq!(n, a.ncols(), "eigen: square only");
    let mut v = DMatrix::identity(n);
    for _ in 0..max_sweeps {
        let off = off_diag_norm(&a);
        if off <= tol * a.norm_fro().max(1e-300) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                jacobi_rotate(&mut a, p, q, Some(&mut v));
            }
        }
    }
    // Sort eigenpairs descending by eigenvalue, permuting V's columns in
    // lockstep with the diagonal.
    let mut order: Vec<usize> = (0..n).collect();
    let diag = a.diag();
    order.sort_by(|&x, &y| diag[y].partial_cmp(&diag[x]).unwrap());
    let eig: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let vecs = DMatrix::from_fn(n, n, |i, j| v[(i, order[j])]);
    (eig, vecs)
}

/// One Jacobi rotation zeroing `a[p][q]` (and `a[q][p]`), optionally
/// accumulated into an eigenvector matrix `v` (`v ← v·J`).
fn jacobi_rotate(a: &mut DMatrix, p: usize, q: usize, v: Option<&mut DMatrix>) {
    let apq = a[(p, q)];
    if apq.abs() < 1e-300 {
        return;
    }
    let app = a[(p, p)];
    let aqq = a[(q, q)];
    let theta = (aqq - app) / (2.0 * apq);
    // Stable tangent of the rotation angle.
    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
    let c = 1.0 / (t * t + 1.0).sqrt();
    let s = t * c;
    let n = a.nrows();
    for k in 0..n {
        let akp = a[(k, p)];
        let akq = a[(k, q)];
        a[(k, p)] = c * akp - s * akq;
        a[(k, q)] = s * akp + c * akq;
    }
    for k in 0..n {
        let apk = a[(p, k)];
        let aqk = a[(q, k)];
        a[(p, k)] = c * apk - s * aqk;
        a[(q, k)] = s * apk + c * aqk;
    }
    if let Some(v) = v {
        for k in 0..n {
            let vkp = v[(k, p)];
            let vkq = v[(k, q)];
            v[(k, p)] = c * vkp - s * vkq;
            v[(k, q)] = s * vkp + c * vkq;
        }
    }
}

/// Frobenius norm of the strictly-off-diagonal part.
pub fn off_diag_norm(a: &DMatrix) -> f64 {
    let n = a.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s.sqrt()
}

/// Effective rank: number of eigenvalues above `threshold`.
pub fn effective_rank(eigenvalues: &[f64], threshold: f64) -> usize {
    eigenvalues.iter().filter(|&&l| l > threshold).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let mut a = DMatrix::zeros(3, 3);
        a[(0, 0)] = 5.0;
        a[(1, 1)] = -1.0;
        a[(2, 2)] = 2.0;
        let e = symmetric_eigenvalues(a, 1e-14, 30);
        assert!((e[0] - 5.0).abs() < 1e-12);
        assert!((e[1] - 2.0).abs() < 1e-12);
        assert!((e[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] → eigenvalues 3 and 1.
        let mut a = DMatrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(1, 1)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        let e = symmetric_eigenvalues(a, 1e-14, 30);
        assert!((e[0] - 3.0).abs() < 1e-12);
        assert!((e[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let n = 24;
        let mut s = 7u64;
        let m = DMatrix::from_fn(n, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.symmetrize();
        let trace: f64 = a.diag().iter().sum();
        let fro2: f64 = a.norm_fro().powi(2);
        let e = symmetric_eigenvalues(a, 1e-13, 50);
        let e_sum: f64 = e.iter().sum();
        let e_sq: f64 = e.iter().map(|l| l * l).sum();
        assert!((e_sum - trace).abs() < 1e-8 * trace.abs().max(1.0));
        assert!((e_sq - fro2).abs() < 1e-8 * fro2);
    }

    #[test]
    fn gram_matrix_rank_detected() {
        // A = B Bᵀ with B n×r has exactly r nonzero eigenvalues.
        let (n, r) = (20, 4);
        let mut s = 3u64;
        let b = DMatrix::from_fn(n, r, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = b.matmul_nt(&b);
        a.symmetrize();
        let e = symmetric_eigenvalues(a, 1e-14, 50);
        assert_eq!(effective_rank(&e, 1e-10), r);
    }

    #[test]
    fn eigenvectors_reconstruct_and_are_orthonormal() {
        let n = 18;
        let mut s = 5u64;
        let m = DMatrix::from_fn(n, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.symmetrize();
        let (eig, v) = symmetric_eigen(a.clone(), 1e-14, 60);
        assert!(eig.windows(2).all(|w| w[0] >= w[1]), "not descending");
        // VᵀV = I.
        let vtv = v.matmul_tn(&v);
        let mut gram_err = vtv;
        gram_err.add_scaled(-1.0, &DMatrix::identity(n));
        assert!(gram_err.norm_fro() < 1e-10, "V not orthonormal");
        // A v_j = λ_j v_j for every pair.
        for j in 0..n {
            let vj = v.col(j);
            let mut av = vec![0.0; n];
            a.matvec(&vj, &mut av);
            for i in 0..n {
                assert!(
                    (av[i] - eig[j] * vj[i]).abs() < 1e-8 * eig[0].abs().max(1.0),
                    "eigenpair {j} fails at row {i}"
                );
            }
        }
        // The eigenvalues must match the eigenvalue-only path.
        let eig_only = symmetric_eigenvalues(a, 1e-14, 60);
        for (x, y) in eig.iter().zip(&eig_only) {
            assert!((x - y).abs() < 1e-9 * eig_only[0].abs().max(1.0));
        }
    }

    #[test]
    fn spd_eigenvalues_positive() {
        let n = 15;
        let mut s = 11u64;
        let m = DMatrix::from_fn(n, n, |_, _| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.shift_diag(0.5);
        a.symmetrize();
        let e = symmetric_eigenvalues(a, 1e-13, 50);
        assert!(e.iter().all(|&l| l > 0.0));
        assert!(e.windows(2).all(|w| w[0] >= w[1]), "not sorted descending");
    }
}
