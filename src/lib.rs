//! # Cascadia Digital Twin
//!
//! A from-scratch Rust reproduction of *"Real-time Bayesian inference at
//! extreme scale: A digital twin for tsunami early warning applied to the
//! Cascadia subduction zone"* (Henneking, Venkat, Dobrev, Camier, Kolev,
//! Fernando, Gabriel, Ghattas — SC 2025, Gordon Bell finalist;
//! arXiv:2504.16344).
//!
//! The system infers earthquake-induced spatiotemporal seafloor motion from
//! ocean-bottom pressure data by solving a Bayesian inverse problem
//! governed by the 3D coupled acoustic–gravity wave equations — **exactly**,
//! in real time — and forecasts tsunami wave heights with quantified
//! uncertainty. The offline–online decomposition that makes this possible
//! (block-Toeplitz p2o maps from LTI dynamics, FFT-diagonalized Hessian
//! actions, a Sherman–Morrison–Woodbury move to the data space) lives in
//! [`twin`] ([`tsunami_core`]); every substrate it needs — high-order FEM,
//! the wave solver with exact discrete adjoints, FFTs, Matérn priors, dense
//! linear algebra, rupture scenarios, machine/scaling models — is
//! implemented in the workspace crates re-exported here.
//!
//! ## Quickstart
//!
//! ```
//! use cascadia_dt::prelude::*;
//!
//! // Scaled-down scenario (see TwinConfig::demo() for a larger one).
//! let config = TwinConfig::tiny();
//!
//! // Synthesize the "true" earthquake and its noisy observations.
//! let solver = config.build_solver();
//! let rupture = SyntheticEvent::default_rupture(&config);
//! let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
//!
//! // Offline: Phases 1–3 (PDE solves, data-space Hessian, data-to-QoI map).
//! let twin = DigitalTwin::offline(config, event.noise_std);
//!
//! // Online: real-time inference + probabilistic forecast.
//! let inference = twin.infer(&event.d_obs);
//! let forecast = twin.forecast(&event.d_obs);
//! assert_eq!(inference.m_map.len(), twin.n_params());
//! assert_eq!(forecast.q_map.len(), forecast.q_std.len());
//! ```

pub use tsunami_core as twin;
pub use tsunami_elastic as elastic;
pub use tsunami_fem as fem;
pub use tsunami_fft as fft;
pub use tsunami_hpc as hpc;
pub use tsunami_linalg as linalg;
pub use tsunami_mesh as mesh;
pub use tsunami_obs as obs;
pub use tsunami_prior as prior;
pub use tsunami_rupture as rupture;
pub use tsunami_solver as solver;
pub use tsunami_stream as stream;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use tsunami_core::{
        greedy_design, infer_window, infer_window_batch, BankAssimilation, Criterion, DigitalTwin,
        Forecast, ForecastBatch, GoalLadder, GoalOptions, GoalRung, Inference, InferenceBatch,
        LtiBayesEngine, LtiModel, ModeSpaceLadder, ModeSpaceOptions, OedCandidates, PodBank,
        ScenarioBank, ScenarioSpec, SpaceTimePrior, SyntheticEvent, TwinConfig, WindowedForecaster,
    };
    pub use tsunami_elastic::{
        DippingFault, ElasticGrid, ElasticSolver, LayeredMedium, ShakeTwin, SlipScenario,
    };
    pub use tsunami_fem::kernels::KernelVariant;
    pub use tsunami_fft::{BlockToeplitz, FftBlockToeplitz};
    pub use tsunami_hpc::{TimerRegistry, ALPS, EL_CAPITAN, FRONTERA, PERLMUTTER};
    pub use tsunami_linalg::{Cholesky, DMatrix, LinearOperator, RhsPanel};
    pub use tsunami_mesh::{CascadiaBathymetry, FlatBathymetry, HexMesh};
    pub use tsunami_obs::{AuditRing, Registry};
    pub use tsunami_prior::MaternPrior;
    pub use tsunami_rupture::KinematicRupture;
    pub use tsunami_solver::{PhysicalParams, WaveSolver};
    pub use tsunami_stream::{
        superpose_forecasts, AssimilateBackend, EngineMetrics, ForecastBackend, IdentifyBackend,
        ScenarioMatch, StreamConfig, StreamEngine, StreamSession, TickMetrics, WarningLevel,
        WarningTransition,
    };
}
