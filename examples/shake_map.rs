//! Shake maps from real-time fault-slip inversion (§VIII extension).
//!
//! The elastic twin inverts surface seismograms for the slip-rate history
//! on a dipping megathrust, then forecasts ground-motion intensity (PGV)
//! at map sites with uncertainty bands sampled from the exact QoI
//! posterior — the ground-motion counterpart of the tsunami forecast.
//!
//! ```text
//! cargo run --release --example shake_map
//! ```

use cascadia_dt::elastic::{
    DippingFault, ElasticGrid, ElasticSolver, LayeredMedium, ShakeTwin, SlipScenario,
};
use cascadia_dt::linalg::random::seeded_rng;
use cascadia_dt::twin::metrics::correlation;

fn main() {
    println!("== Elastic digital twin: fault-slip inversion + shake map ==\n");

    // A 60 km x 24 km cross-section of the margin: layered crust, a
    // 14-degree megathrust with 8 patches, 10 stations onshore/offshore,
    // and 6 shake-map sites over the "populated" coastal strip.
    let (width, depth) = (60_000.0, 24_000.0);
    let grid = ElasticGrid::new(60, 24, 1000.0, 1000.0, 6, 0.94);
    let medium = LayeredMedium::cascadia_margin(depth);
    let fault = DippingFault::megathrust(width, depth, 8);
    let stations: Vec<f64> = (0..10).map(|i| 6_000.0 + 4_800.0 * i as f64).collect();
    let map_sites: Vec<f64> = (0..6).map(|i| 34_000.0 + 4_000.0 * i as f64).collect();
    let solver = ElasticSolver::new(grid, &medium, fault, &stations, &map_sites, 0.5, 30, 0.5);
    println!(
        "section {:.0} x {:.0} km | {} fault patches | {} stations | {} map sites | {} bins x {} substeps",
        width / 1e3,
        depth / 1e3,
        solver.n_m(),
        solver.stations.len(),
        solver.qoi_sites.len(),
        solver.nt_obs,
        solver.steps_per_bin,
    );

    // Truth: a kinematic partial rupture with two asperities, 1% noise.
    let scenario = SlipScenario::partial_rupture(solver.n_m());
    let np = solver.n_m();
    let patch_len = solver.fault.patch_length();
    let mw = scenario.moment_magnitude(&solver.fault, &medium, 800e3, 0.5, solver.nt_obs);
    println!("scenario magnitude (800 km strike extent): Mw {mw:.1}");

    let t0 = std::time::Instant::now();
    let ev = cascadia_dt::elastic::synthesize(&solver, &scenario, 0.01, 2025);
    println!(
        "synthetic event: {} seismogram samples, noise std {:.2e} m/s ({:.1} s)",
        ev.d_obs.len(),
        ev.noise_std,
        t0.elapsed().as_secs_f64()
    );

    // Offline: the generic LTI engine on the elastic physics.
    let t0 = std::time::Instant::now();
    let twin = ShakeTwin::offline(solver, 6_000.0, 1.0, ev.noise_std);
    println!("offline phases 1-3: {:.1} s", t0.elapsed().as_secs_f64());

    // Online: slip inversion.
    let inf = twin.invert_slip(&ev.d_obs);
    let slip_true = twin.final_slip(&ev.m_true);
    let slip_map = twin.final_slip(&inf.m_map);
    println!(
        "\nonline slip inversion: {:.2} ms, final-slip correlation {:.3}",
        inf.seconds * 1e3,
        correlation(&slip_map, &slip_true)
    );
    println!("\n  patch  depth(km)  true slip(m)  inferred(m)");
    for p in 0..np {
        let (_, z) = twin.solver.fault.patch_center(p);
        println!(
            "   {p:>3}   {:>7.1}   {:>10.2}   {:>9.2}",
            z / 1e3,
            slip_true[p],
            slip_map[p]
        );
    }
    let _ = patch_len;

    // Online: shake map with uncertainty (200 posterior samples).
    let mut rng = seeded_rng(7);
    let t0 = std::time::Instant::now();
    let sm = twin.shake_map(&ev.d_obs, 200, &mut rng);
    let pgv_true =
        cascadia_dt::elastic::pgv(&ev.q_true, twin.solver.qoi_sites.len(), twin.solver.nt_obs);
    println!(
        "\nshake map ({} samples, {:.0} ms):",
        sm.n_samples,
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("  site x(km)   true PGV    mean PGV    [p05,  p95] (m/s)");
    for (s, &x) in map_sites.iter().enumerate() {
        println!(
            "   {:>6.0}    {:>8.3}   {:>8.3}   [{:>6.3}, {:>6.3}]",
            x / 1e3,
            pgv_true[s],
            sm.pgv_mean[s],
            sm.pgv_p05[s],
            sm.pgv_p95[s]
        );
    }
    println!("\nThe same offline-online decomposition as the tsunami twin — Phases 2-4");
    println!("are shared code; only the Phase 1 adjoint solves know about elasticity.");
}
