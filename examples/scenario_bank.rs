//! Scenario bank: assimilate a whole family of rupture scenarios through
//! the batched online path in one call, and compare against the looped
//! single-RHS path.
//!
//! ```text
//! cargo run --release --example scenario_bank
//! ```

use cascadia_dt::prelude::*;
use std::time::Instant;

fn main() {
    println!("== Scenario bank: batched online assimilation ==\n");
    let config = TwinConfig::tiny();

    // 1. A diverse family of rupture scenarios: hypocenter, magnitude
    //    (peak uplift), rise time, and asperity count all vary.
    let n_scenarios = 12;
    let specs = ScenarioBank::family(&config, n_scenarios, 7);
    let solver = config.build_solver();
    let t0 = Instant::now();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    println!(
        "generated {} scenarios ({} observations each) in {:.2} s",
        bank.len(),
        bank.observations().nrows(),
        t0.elapsed().as_secs_f64()
    );
    drop(solver);

    // 2. One precomputed twin serves the whole bank.
    let t1 = Instant::now();
    let twin = DigitalTwin::offline(config, bank.noise_std());
    println!("offline phases 1-3: {:.2} s\n", t1.elapsed().as_secs_f64());

    // 3. Batched assimilation: one multi-RHS K⁻¹ solve + one batched FFT
    //    pass for all scenarios.
    let out = bank.assimilate(&twin);
    println!(
        "batched assimilation of {} scenarios: infer {:.3} ms, forecast {:.3} ms",
        bank.len(),
        out.inference.seconds * 1e3,
        out.forecast.seconds * 1e3
    );

    // 4. The same work through the looped single-RHS path, for contrast.
    let t2 = Instant::now();
    for j in 0..bank.len() {
        let d_j = bank.observations().col(j);
        let _ = twin.infer(&d_j);
        let _ = twin.forecast(&d_j);
    }
    let looped = t2.elapsed().as_secs_f64();
    let batched = out.inference.seconds + out.forecast.seconds;
    println!(
        "looped single-RHS path:            infer+forecast {:.3} ms  ({:.1}x batched)",
        looped * 1e3,
        looped / batched.max(1e-12)
    );

    // 5. Per-scenario report.
    let errs = bank.forecast_errors(&out.forecast);
    println!(
        "\n{:>3}  {:>6}  {:>8}  {:>6}  {:>6}  {:>9}",
        "#", "Mw", "hypo", "rise", "n_asp", "rel L2 err"
    );
    for (j, (s, e)) in bank.scenarios.iter().zip(&errs).enumerate() {
        println!(
            "{:>3}  {:>6.2}  {:>7.0}%  {:>5.1}s  {:>6}  {:>9.3}",
            j,
            s.event.magnitude,
            100.0 * s.spec.hypo_frac,
            s.spec.rise_time,
            s.spec.n_asperities,
            e
        );
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    println!("\nmean forecast error over the bank: {mean:.3}");
}
