//! Real-time false-alarm discrimination via Bayesian model evidence.
//!
//! The paper's motivation (§III) cites the 2024 Cape Mendocino earthquake,
//! "which did not cause a tsunami, despite five million people receiving
//! evacuation alerts" — the cost of source characterization that cannot
//! tell a tsunamigenic rupture from a seismic event that leaves the ocean
//! alone. The data-space machinery answers this for free: the marginal
//! likelihood of the pressure data under the tsunami-source model uses the
//! already-factorized `K`, so a Bayes factor against the "sensor noise
//! only" null costs one triangular solve — microseconds, well inside the
//! online budget.
//!
//! ```text
//! cargo run --release --example false_alarm
//! ```

use cascadia_dt::linalg::random::{fill_randn, seeded_rng};
use cascadia_dt::prelude::*;
use cascadia_dt::twin::evidence::{log_bayes_factor, log_evidence, log_null};

fn main() {
    println!("== Evidence-based event discrimination (Cape Mendocino scenario) ==\n");

    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 1117);
    drop(solver);
    let twin = DigitalTwin::offline(config, event.noise_std);
    let n = twin.n_data();

    // Scenario A: a genuine tsunamigenic rupture excites the sensors.
    let t0 = std::time::Instant::now();
    let bf_event = log_bayes_factor(&twin.phase2, &event.d_obs, event.noise_std);
    let dt_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Scenario B: "Cape Mendocino" — the sensors record only noise (the
    // earthquake shook the land but moved no water).
    let mut rng = seeded_rng(42);
    let mut quiet = vec![0.0; n];
    fill_randn(&mut rng, &mut quiet);
    for v in quiet.iter_mut() {
        *v *= event.noise_std;
    }
    let bf_quiet = log_bayes_factor(&twin.phase2, &quiet, event.noise_std);

    // Scenario C: a weak event at one tenth of the source amplitude.
    let weak: Vec<f64> = event
        .d_clean
        .iter()
        .zip(&quiet)
        .map(|(&s, &e)| 0.1 * s + e)
        .collect();
    let bf_weak = log_bayes_factor(&twin.phase2, &weak, event.noise_std);

    println!("log Bayes factor: source model vs sensor-noise null");
    println!("  (>0 favors a real seafloor source; >5 is decisive)\n");
    println!("  margin-wide rupture:   {bf_event:>12.1}   -> ISSUE WARNING");
    println!(
        "  weak (10%) source:     {bf_weak:>12.1}   -> {}",
        if bf_weak > 5.0 {
            "ISSUE WARNING"
        } else {
            "monitor"
        }
    );
    println!("  no tsunami (noise):    {bf_quiet:>12.1}   -> stand down");
    println!("\ndecision latency: {dt_ms:.3} ms (one triangular solve on the factored K)");

    // The components, for the curious.
    println!("\ncomponents for the rupture record:");
    println!(
        "  log p(d | source) = {:.1},  log p(d | null) = {:.1}",
        log_evidence(&twin.phase2, &event.d_obs),
        log_null(&event.d_obs, event.noise_std)
    );
    println!("\nThe Occam penalty in log det K keeps the source model from claiming");
    println!("noise as signal, so the same twin that forecasts wave heights also");
    println!("suppresses the false alarms that plague magnitude-based triggers.");
}
