//! The scaled Cascadia scenario end to end — the Fig 3 / Fig 4 narrative.
//!
//! A margin-wide kinematic rupture on a Cascadia-like shelf–slope–trench
//! margin; offshore pressure sensors; nearshore wave-height forecasts with
//! credible intervals; posterior uncertainty maps. Writes CSV outputs under
//! `target/experiments/`.
//!
//! ```text
//! cargo run --release --example cascadia_twin
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, correlation, displacement_field, rel_l2};

fn main() {
    let config = TwinConfig::demo();
    println!("== Cascadia digital twin: scaled margin-wide scenario ==");
    println!(
        "margin {:.0} x {:.0} km, {} elements (order {}), {} sensors, {} forecast pts, Nm*Nt = {}",
        config.lx / 1e3,
        config.ly / 1e3,
        config.nx * config.ny * config.nz,
        config.order,
        config.n_sensors(),
        config.n_qoi,
        config.n_m() * config.nt_obs
    );

    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    println!(
        "rupture: margin-wide, Mw {:.2}, front speed {:.0} m/s",
        rupture.magnitude(60, 120, config.lx, config.ly),
        rupture.rupture_speed
    );
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 8700);
    drop(solver);

    let t0 = std::time::Instant::now();
    let twin = DigitalTwin::offline(config.clone(), event.noise_std);
    println!("\noffline pipeline: {:.1} s", t0.elapsed().as_secs_f64());
    println!("{}", twin.timers.report());

    let inference = twin.infer(&event.d_obs);
    let forecast = twin.forecast(&event.d_obs);
    println!(
        "online: infer {:.2} ms, forecast {:.3} ms",
        inference.seconds * 1e3,
        forecast.seconds * 1e3
    );

    // Fig 3 analog: displacement fields + uncertainty.
    let nm = twin.solver.n_m();
    let nt = twin.solver.grid.nt_obs;
    let dt = twin.solver.grid.dt_obs();
    let b_true = displacement_field(&event.m_true, nm, nt, dt);
    let b_map = displacement_field(&inference.m_map, nm, nt, dt);
    let b_std = twin.displacement_uncertainty();
    println!("\nseafloor displacement reconstruction (Fig 3 analog):");
    println!(
        "  pattern correlation : {:.3}",
        correlation(&b_map, &b_true)
    );
    println!("  relative L2 error   : {:.3}", rel_l2(&b_map, &b_true));
    let peak_true = b_true.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let peak_map = b_map.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    let mean_std = b_std.iter().sum::<f64>() / b_std.len() as f64;
    println!("  peak uplift true/inferred: {peak_true:.2} / {peak_map:.2} m");
    println!("  mean posterior std       : {mean_std:.3} m");

    // Fig 4 analog: wave-height forecasts with CIs.
    println!("\nwave-height forecasts (Fig 4 analog):");
    println!(
        "  95% CI coverage: {:.0}%, forecast rel-L2 error: {:.3}",
        100.0 * ci95_coverage(&forecast.q_map, &forecast.q_std, &event.q_true),
        rel_l2(&forecast.q_map, &event.q_true)
    );
    let nq = twin.solver.qoi.len();
    for j in 0..nq.min(4) {
        let peak_t = (0..nt)
            .map(|i| event.q_true[i * nq + j])
            .fold(0.0f64, |m, v| m.max(v.abs()));
        let peak_p = (0..nt)
            .map(|i| forecast.q_map[i * nq + j])
            .fold(0.0f64, |m, v| m.max(v.abs()));
        println!("  location #{j}: peak true {peak_t:.3} m, peak predicted {peak_p:.3} m");
    }

    // Persist fields for plotting.
    let dir = std::path::Path::new("target/experiments");
    std::fs::create_dir_all(dir).unwrap();
    let mut csv = String::from("cell,b_true,b_map,b_std\n");
    for c in 0..nm {
        csv.push_str(&format!(
            "{c},{:.6e},{:.6e},{:.6e}\n",
            b_true[c], b_map[c], b_std[c]
        ));
    }
    std::fs::write(dir.join("cascadia_twin_fields.csv"), csv).unwrap();
    println!("\nfields written to target/experiments/cascadia_twin_fields.csv");
}
