//! Optimal sensor placement for the Cascadia array (§III-A / SZ4D).
//!
//! Given a dense grid of *candidate* seafloor sites, greedily select the
//! subset that minimizes the forecast uncertainty at the coastal QoI
//! locations (goal-oriented A-optimal design), and compare against the
//! D-optimal (information-gain) design and random placement.
//!
//! ```text
//! cargo run --release --example sensor_placement
//! ```

use cascadia_dt::prelude::*;

fn main() {
    println!("== Bayesian optimal sensor placement ==\n");

    // Build a twin whose "sensor array" is the full candidate set; the
    // OED machinery then scores sub-arrays without further PDE solves.
    let mut config = TwinConfig::tiny();
    config.sensor_grid = (3, 3); // 9 candidate sites over the offshore band
    let n_cand = config.n_sensors();
    let twin = DigitalTwin::offline(config, 0.02);
    let cand = OedCandidates::build(&twin.phase1, &twin.phase2, &twin.phase3);
    let prior_trace: f64 = cand.a0.diag().iter().sum();
    println!(
        "{n_cand} candidate sites | {} QoI entries | prior forecast variance {prior_trace:.4e}",
        cand.a0.nrows()
    );

    let n_pick = (n_cand / 2).max(2);

    // Goal-oriented A-optimal greedy design.
    let t0 = std::time::Instant::now();
    let a_design = greedy_design(&cand, n_pick, Criterion::AOptimal);
    println!(
        "\nA-optimal greedy ({} picks, {:.2} s):",
        n_pick,
        t0.elapsed().as_secs_f64()
    );
    println!("  pick  site  trace(Gamma_post(q))  variance reduced");
    for (k, (&site, &tr)) in a_design
        .selected
        .iter()
        .zip(&a_design.objective_path)
        .enumerate()
    {
        println!(
            "  {:>4}  {:>4}  {:>18.4e}  {:>6.1}%",
            k + 1,
            site,
            tr,
            100.0 * (1.0 - tr / prior_trace)
        );
    }

    // D-optimal (information gain) design for comparison.
    let d_design = greedy_design(&cand, n_pick, Criterion::DOptimal);
    println!(
        "\nD-optimal greedy picks:  {:?} (gain {:.2} nats)",
        d_design.selected,
        d_design.objective_path.last().unwrap()
    );
    println!("A-optimal greedy picks:  {:?}", a_design.selected);

    // Random designs of the same size, for scale.
    use cascadia_dt::linalg::random::seeded_rng;
    use rand::prelude::IndexedRandom;
    let mut rng = seeded_rng(11);
    let all: Vec<usize> = (0..n_cand).collect();
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    let trials = 30;
    for _ in 0..trials {
        let pick: Vec<usize> = all.sample(&mut rng, n_pick).copied().collect();
        let tr = cand.qoi_trace(&pick);
        sum += tr;
        best = best.min(tr);
    }
    let greedy_tr = *a_design.objective_path.last().unwrap();
    println!("\nrandom designs ({trials} trials, same budget):");
    println!(
        "  average trace {:.4e}   best trace {:.4e}",
        sum / trials as f64,
        best
    );
    println!("  greedy  trace {greedy_tr:.4e}");
    println!(
        "  greedy beats the random average by {:.1}% of the prior variance",
        100.0 * (sum / trials as f64 - greedy_tr) / prior_trace
    );
    println!("\nThe diminishing returns along the greedy path are the submodularity");
    println!("that gives the D-optimal design its (1 - 1/e) guarantee.");
}
