//! Goal-oriented early warning: precomputed data-to-QoI operators make a
//! streaming tick a handful of small GEMMs.
//!
//! The windowed engine pays a dense `Nq·Nt × k` forecast GEMM (and,
//! with inference on, a leading-block factor walk) per assimilation
//! panel. The goal-oriented split (arXiv:2501.14911) precomputes the
//! per-rung data-to-QoI map `T_w = B_w K_w⁻¹` offline, compresses it to
//! rank `r` with a certified truncation bound, and the online tick is
//! rank-sized folds `z += R_wᵀ d` plus one small `L_w · Z`
//! materialization per rung crossing. This example streams one event
//! through both backends and reports:
//!
//! - bit-identity of the exact (uncompressed) ladder with the windowed
//!   path at every rung;
//! - the truncated ladder's worst observed error vs its certified bound
//!   `trunc_bound · ‖d_w‖₂`;
//! - warning-level timelines (all three paths must call the event the
//!   same way, up to boundary cases within the bound);
//! - offline resident memory of the dense vs factored ladder.
//!
//! ```text
//! cargo run --release --example goal_oriented_warning
//! ```

use cascadia_dt::prelude::*;

fn main() {
    println!("== Goal-oriented streaming forecast ==\n");
    let config = TwinConfig::tiny();

    // Offline: synthesize a rupture event, build the twin, and precompute
    // both forecast ladders over the same window rungs.
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    drop(solver);
    let twin = DigitalTwin::offline(config, event.noise_std);
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let windows = [2, nt / 2, nt];
    let forecaster = twin.windowed(&windows);
    let gl_exact = twin.goal_ladder(&windows, &GoalOptions::exact());
    let rank = 4;
    let gl_trunc = twin.goal_ladder(&windows, &GoalOptions::rank(rank));

    println!(
        "offline ladders over windows {:?} (Nd = {nd}, horizon {nt} steps):",
        gl_exact.windows
    );
    println!(
        "  dense resident: {:>8} elems   rank-{rank} factored: {:>6} elems ({:.1}x smaller)",
        gl_trunc.windowed_resident_elems(),
        gl_trunc.resident_elems(),
        gl_trunc.windowed_resident_elems() as f64 / gl_trunc.resident_elems() as f64
    );
    println!(
        "  per-stream fold state: {} values (vs re-reading up to {} window samples)\n",
        gl_trunc.fold_len(),
        nt * nd
    );

    // Online: the same event through all three backends, pushed in
    // sensor-step pieces with a tick after every push.
    let threshold = 0.05;
    let cfg = StreamConfig {
        infer: false,
        warn_threshold: threshold,
        ..StreamConfig::default()
    };
    let mut windowed = StreamEngine::new(&twin, &forecaster, cfg);
    let mut exact = StreamEngine::goal_oriented(&twin, &gl_exact, cfg);
    let mut trunc = StreamEngine::goal_oriented(&twin, &gl_trunc, cfg);
    let ids = [windowed.open(), exact.open(), trunc.open()];

    println!(
        "streaming the event ({} samples, tick per step):",
        event.d_obs.len()
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12}",
        "step", "rung", "windowed", "goal-exact", "goal-trunc", "trunc err"
    );
    let mut worst_err = 0.0f64;
    let mut worst_bound = 0.0f64;
    let mut fed = 0;
    while fed < event.d_obs.len() {
        let hi = (fed + nd).min(event.d_obs.len());
        windowed.push(ids[0], &event.d_obs[fed..hi]);
        exact.push(ids[1], &event.d_obs[fed..hi]);
        trunc.push(ids[2], &event.d_obs[fed..hi]);
        fed = hi;
        windowed.tick();
        exact.tick();
        trunc.tick();

        let sw = windowed.session(ids[0]);
        if let (Some(w), Some(fw)) = (sw.window(), sw.forecast.as_ref()) {
            let fe = exact.session(ids[1]).forecast.as_ref().unwrap();
            let ft = trunc.session(ids[2]).forecast.as_ref().unwrap();
            assert_eq!(fw.q_map, fe.q_map, "exact ladder must bit-match");
            let err: f64 = ft
                .q_map
                .iter()
                .zip(&fw.q_map)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let k = gl_trunc.windows[w] * nd;
            let d_norm = event.d_obs[..k].iter().map(|v| v * v).sum::<f64>().sqrt();
            let bound = gl_trunc.mean_error_bound(w, d_norm);
            assert!(
                err <= bound + 1e-12,
                "truncation bound violated: {err} > {bound}"
            );
            if err > worst_err {
                (worst_err, worst_bound) = (err, bound);
            }
            println!(
                "{:>6} {:>6} {:>12} {:>12} {:>12} {:>12.3e}",
                fed / nd,
                w,
                sw.level.to_string(),
                exact.session(ids[1]).level.to_string(),
                trunc.session(ids[2]).level.to_string(),
                err
            );
        }
    }

    println!("\nexact ladder: bitwise identical to the windowed path at every rung");
    println!(
        "rank-{rank} ladder: worst error {worst_err:.3e} vs certified bound {worst_bound:.3e}"
    );
    let final_level = windowed.session(ids[0]).level;
    println!("final call: {final_level} from all backends at threshold {threshold} m");
    assert_eq!(final_level, exact.session(ids[1]).level);
}
