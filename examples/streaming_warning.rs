//! Streaming early warning: replay a bank of rupture scenarios as
//! interleaved live sensor feeds and watch the warning timeline sharpen.
//!
//! Every scenario becomes one concurrent observation session. Each round,
//! every session receives its next observation step (one sample per
//! sensor), then a single engine tick micro-batches all sessions that
//! crossed the same window-ladder rung through one multi-RHS windowed
//! inference + forecast. The printed timeline shows, per session, the
//! warning level firming up and the scenario identification locking on as
//! the window grows.
//!
//! ```text
//! cargo run --release --example streaming_warning
//! ```
//!
//! By default the replay runs on `TwinConfig::tiny()` (seconds). Set
//! `STREAMING_DEMO=1` for the demo-scale variant on `TwinConfig::demo()`
//! — a 4×4 sensor array over an 18-step horizon whose offline build takes
//! a couple of minutes on one core, the regime where the micro-batched
//! tick and bank-scale identification actually pay off.

use cascadia_dt::prelude::*;

/// `STREAMING_DEMO=1` selects the demo-scale configuration.
fn demo_scale() -> bool {
    std::env::var("STREAMING_DEMO")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn main() {
    println!("== Streaming assimilation: live warning timeline ==\n");
    let config = if demo_scale() {
        println!("(STREAMING_DEMO=1: demo-scale twin, offline build takes minutes)\n");
        TwinConfig::demo()
    } else {
        TwinConfig::tiny()
    };

    // 1. Offline: a bank of diverse rupture scenarios and one precomputed
    //    twin + window ladder that will serve every live stream.
    let n_sessions = 6;
    let specs = ScenarioBank::family(&config, n_sessions, 7);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let ladder: Vec<usize> = [1, 2, 4, 8, nt]
        .iter()
        .cloned()
        .filter(|&w| w <= nt)
        .collect();
    let forecaster = twin.windowed(&ladder);
    println!(
        "bank: {} scenarios · ladder: {:?} observation steps · {} sensors",
        bank.len(),
        forecaster.windows,
        nd
    );

    // 2. The streaming engine: one session per scenario, assimilated in
    //    bounded panels of 4, classified against a 1 m wave threshold.
    let stream_cfg = StreamConfig {
        chunk: 4,
        warn_threshold: 1.0,
        infer: true,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(&twin, &forecaster, stream_cfg).with_bank(&bank);
    let ids: Vec<usize> = (0..bank.len()).map(|_| engine.open()).collect();
    let feeds: Vec<Vec<f64>> = (0..bank.len())
        .map(|j| bank.observations().col(j))
        .collect();
    let mut levels = vec![WarningLevel::AllClear; bank.len()];

    // 3. Replay: interleaved live feeds, one observation step per session
    //    per round, with a tick after every round.
    println!(
        "\n--- warning timeline (threshold {} m) ---",
        stream_cfg.warn_threshold
    );
    for t in 0..nt {
        for (d, &id) in feeds.iter().zip(&ids) {
            engine.push(id, &d[t * nd..(t + 1) * nd]);
        }
        let tm = engine.tick();
        if tm.sessions_assimilated == 0 {
            continue;
        }
        println!(
            "t = {:>5.1} s | {} sessions in {} panel(s), {:.2} ms ({:.0} sessions/s)",
            (t + 1) as f64 * twin.config.dt_obs,
            tm.sessions_assimilated,
            tm.panels,
            tm.seconds * 1e3,
            tm.sessions_per_sec()
        );
        for (j, &id) in ids.iter().enumerate() {
            let s = engine.session(id);
            let (Some(w), Some(fc)) = (s.window(), s.forecast.as_ref()) else {
                continue;
            };
            let peak = fc.q_map.iter().cloned().fold(f64::MIN, f64::max);
            let top = &engine.ranked_matches(id)[0];
            let flip = if s.level != levels[j] {
                " <-- level change"
            } else {
                ""
            };
            levels[j] = s.level;
            println!(
                "    S{j}: window {:>2} steps | peak {:>6.2} m ± {:>5.2} | {:<9} | best match #{} (p = {:.2}){flip}",
                forecaster.windows[w],
                peak,
                1.96 * fc.q_std.iter().cloned().fold(f64::MIN, f64::max),
                s.level,
                top.scenario,
                top.probability,
            );
        }
    }

    // 4. Scorecard: identification accuracy and engine totals.
    let correct = ids
        .iter()
        .enumerate()
        .filter(|(j, &id)| engine.ranked_matches(id)[0].scenario == *j)
        .count();
    let em = *engine.metrics();
    println!("\n--- scorecard ---");
    println!("identified {correct}/{} streams correctly", bank.len());
    println!(
        "{} assimilations over {} ticks in {} panels, total {:.2} ms",
        em.assimilations,
        em.ticks,
        em.panels,
        em.seconds * 1e3
    );
    println!(
        "peak materialized panel: {} elements (chunk bound: {})",
        em.peak_panel_elems,
        twin.n_data().max(twin.n_params()) * stream_cfg.chunk
    );
    for (j, &id) in ids.iter().enumerate() {
        let s = engine.session(id);
        println!(
            "  S{j}: Mw {:>4.2} | final {:<9} | m-norm {:.3}",
            bank.scenarios[j].event.magnitude,
            s.level,
            s.m_norm.unwrap_or(0.0),
        );
    }

    // 5. Audit trail: the engine's bounded ring has recorded every
    //    warning-level transition with the evidence behind it.
    println!(
        "\n--- warning audit trail ({} transitions) ---",
        engine.audit().len()
    );
    for tr in engine.audit().iter() {
        let top = tr
            .top_scenario
            .map(|(s, p)| format!("#{s} (p = {p:.2})"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  tick {:>2} S{} rung {}: {:<9} -> {:<9} | band [{:>6.2}, {:>6.2}] m | top {top}",
            tr.tick, tr.session, tr.rung, tr.from, tr.to, tr.band_lo, tr.band_hi
        );
    }
}
