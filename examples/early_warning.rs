//! Streaming early warning: forecast skill vs. data latency.
//!
//! During a real event the twin does not get the full 420 s record at
//! once — data stream in. Because the data-space Hessian of a truncated
//! observation window is a leading principal block of the full `K`, one
//! offline Cholesky factorization serves *every* window length, and each
//! streaming update keeps the paper's sub-second online guarantee. This
//! example replays a synthetic rupture and issues a forecast after each
//! new batch of observations, printing the latency-accuracy trade an
//! early-warning operator would act on.
//!
//! ```text
//! cargo run --release --example early_warning
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, rel_l2};

fn main() {
    println!("== Streaming early warning: accuracy vs. data window ==\n");

    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 314);
    drop(solver);

    let twin = DigitalTwin::offline(config, event.noise_std);
    let nd = twin.solver.sensors.len();
    let nt = twin.solver.grid.nt_obs;
    let dt_obs = twin.solver.grid.dt_obs();

    // Precompute forecast operators for a ladder of windows (offline).
    let windows: Vec<usize> = (1..=nt).collect();
    let t0 = std::time::Instant::now();
    let wf = WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &windows);
    println!(
        "windowed forecaster: {} windows precomputed in {:.2} s (offline)\n",
        wf.windows.len(),
        t0.elapsed().as_secs_f64()
    );

    println!("  window  data(s)  online(ms)  forecast rel-L2  95% CI coverage");
    for (i, &w) in wf.windows.iter().enumerate() {
        let d_window = &event.d_obs[..w * nd];
        let fc = wf.forecast(i, d_window);
        let err = rel_l2(&fc.q_map, &event.q_true);
        let cov = ci95_coverage(&fc.q_map, &fc.q_std, &event.q_true);
        println!(
            "  {w:>6}  {:>6.1}  {:>9.3}  {:>14.3}  {:>13.0}%",
            w as f64 * dt_obs,
            fc.seconds * 1e3,
            err,
            100.0 * cov
        );
    }

    // The streamed *inference* (source reconstruction) is exact per window
    // too; show the first/last window errors against the full solve.
    let inf_full = twin.infer(&event.d_obs);
    let inf_w1 = infer_window(&twin.phase1, &twin.phase2, &event.d_obs[..nd], 1);
    let inf_wn = infer_window(&twin.phase1, &twin.phase2, &event.d_obs, nt);
    let diff: f64 = inf_wn
        .m_map
        .iter()
        .zip(&inf_full.m_map)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    println!("\nfull-window streamed inference == batch inference: residual {diff:.2e}");
    println!(
        "one-window inference norm {:.3e} vs full {:.3e} (early data constrain little)",
        inf_w1.m_map.iter().map(|v| v * v).sum::<f64>().sqrt(),
        inf_full.m_map.iter().map(|v| v * v).sum::<f64>().sqrt()
    );
    println!("\nUncertainty shrinks monotonically with the window; the operator");
    println!("reads this table as: how long to wait before the forecast is");
    println!("trustworthy enough to trigger (or cancel) an evacuation.");
}
