//! Sensor-network design study (extension of §VIII).
//!
//! The paper notes that warning quality is limited by the sparsity of
//! offshore sensors. Because the twin solves the Bayesian problem exactly,
//! the value of a sensor layout is computable *before any earthquake*: this
//! example sweeps sensor counts and reports forecast error, credible-
//! interval width, and posterior uncertainty — an optimal-experimental-
//! design workflow built on the public API.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, rel_l2};

fn main() {
    println!("== sensor-network design study ==\n");
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>12}",
        "sensors", "forecast err", "mean CI width", "CI coverage", "mean b-std"
    );
    for &(sx, sy) in &[(1usize, 2usize), (2, 2), (2, 4), (3, 4)] {
        let mut config = TwinConfig::tiny();
        config.sensor_grid = (sx, sy);
        let solver = config.build_solver();
        let rupture = SyntheticEvent::default_rupture(&config);
        let event = SyntheticEvent::generate(&config, &solver, &rupture, 77);
        drop(solver);
        let twin = DigitalTwin::offline(config, event.noise_std);
        let fc = twin.forecast(&event.d_obs);
        let err = rel_l2(&fc.q_map, &event.q_true);
        let width = 2.0 * 1.96 * fc.q_std.iter().sum::<f64>() / fc.q_std.len() as f64;
        let cover = ci95_coverage(&fc.q_map, &fc.q_std, &event.q_true);
        let b_std = twin.displacement_uncertainty();
        let mean_bstd = b_std.iter().sum::<f64>() / b_std.len() as f64;
        println!(
            "{:>10} {:>12.4} {:>14.5} {:>13.0}% {:>12.4}",
            sx * sy,
            err,
            width,
            100.0 * cover,
            mean_bstd
        );
    }
    println!(
        "\nexpected shape: more sensors → smaller forecast error, narrower\n\
         credible intervals, lower posterior uncertainty (coverage stays\n\
         calibrated). This is the paper's §VIII sensor-sparsity point made\n\
         quantitative."
    );
}
