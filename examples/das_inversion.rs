//! Distributed acoustic sensing as the observation network (§VIII).
//!
//! The paper notes that "emerging technologies such as distributed
//! acoustic sensing will improve observational coverage for resolving
//! near-field tsunami source characteristics." Here the same digital-twin
//! machinery runs with a seafloor *fiber* instead of point pressure
//! gauges: each DAS channel reads the along-fiber pressure difference
//! quotient, and nothing downstream of the observation operator changes.
//!
//! ```text
//! cargo run --release --example das_inversion
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::solver::SensorArray;
use cascadia_dt::twin::metrics::{correlation, displacement_field, rel_l2};
use cascadia_dt::twin::{phase4, Phase1, Phase2, Phase3};

fn main() {
    println!("== Tsunami source inversion from a DAS fiber ==\n");

    let config = TwinConfig::tiny();
    let base = config.build_solver();

    // Lay a fiber zig-zagging across the offshore source band, with
    // waypoints every ~1 km — far denser coverage than the point array.
    let n_way = 9;
    let pts: Vec<(f64, f64)> = (0..n_way)
        .map(|k| {
            let t = k as f64 / (n_way - 1) as f64;
            let x = config.lx * (0.12 + 0.42 * t);
            let y = config.ly * (0.25 + 0.5 * ((4.0 * t).sin() * 0.5 + 0.5));
            (x, y)
        })
        .collect();
    let fiber = SensorArray::das_fiber(&base.op, &pts, 0.05);
    println!(
        "fiber: {} waypoints -> {} DAS channels (point array: {} gauges)",
        pts.len(),
        fiber.len(),
        config.n_sensors()
    );

    // Swap the observation operator; everything else is untouched.
    let mut solver = config.build_solver();
    solver.sensors = fiber;

    // Whiten the channels: DAS difference quotients are orders of magnitude
    // smaller than pressures, so equalize per-channel RMS on a design-stage
    // calibration scenario before inverting (rescaling rows of F and d by
    // the same factor leaves the inverse problem equivalent but makes the
    // isotropic-noise model honest).
    let rupture = SyntheticEvent::default_rupture(&config);
    let calib = SyntheticEvent::generate(&config, &solver, &rupture, 7);
    let factors = whitening_factors(&calib.d_clean, solver.sensors.len());
    solver.sensors.rescale_channels(&factors);

    // Truth and synthetic DAS recordings (on the whitened channels).
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 99);
    println!(
        "synthetic event: {} channel samples, noise std {:.3e}",
        event.d_obs.len(),
        event.noise_std
    );

    // Offline phases on the DAS network (generic engine, explicit phases).
    let timers = TimerRegistry::new();
    let t0 = std::time::Instant::now();
    let p1 = Phase1::build(&solver, &timers);
    let p2 = Phase2::build(&p1, &config.build_prior(), event.noise_std, &timers);
    let p3 = Phase3::build(&p1, &p2, &timers);
    println!("offline phases 1-3: {:.2} s", t0.elapsed().as_secs_f64());

    // Online: invert + forecast from fiber data.
    let inf = phase4::infer(&p1, &p2, &event.d_obs);
    let fc = phase4::predict(&p3, &event.d_obs);
    println!(
        "online: infer {:.2} ms, forecast {:.3} ms",
        inf.seconds * 1e3,
        fc.seconds * 1e3
    );

    let nm = solver.n_m();
    let nt = solver.grid.nt_obs;
    let dt = solver.grid.dt_obs();
    let b_true = displacement_field(&event.m_true, nm, nt, dt);
    let b_map = displacement_field(&inf.m_map, nm, nt, dt);
    println!("\ninversion quality from the fiber alone:");
    println!(
        "  displacement correlation: {:.3}",
        correlation(&b_map, &b_true)
    );
    println!(
        "  QoI forecast rel-L2:      {:.3}",
        rel_l2(&fc.q_map, &event.q_true)
    );

    // Reference: the point-gauge array on the same mesh and noise budget.
    let twin = DigitalTwin::offline(config, event.noise_std);
    let ev_pt = SyntheticEvent::generate(&twin.config, &twin.solver, &rupture, 99);
    let inf_pt = twin.infer(&ev_pt.d_obs);
    let fc_pt = twin.forecast(&ev_pt.d_obs);
    let b_pt = displacement_field(&inf_pt.m_map, nm, nt, dt);
    println!("\npoint-gauge reference:");
    println!(
        "  displacement correlation: {:.3}",
        correlation(&b_pt, &b_true)
    );
    println!(
        "  QoI forecast rel-L2:      {:.3}",
        rel_l2(&fc_pt.q_map, &ev_pt.q_true)
    );
    // Hybrid deployment: the fiber plus the point gauges, one array.
    // Channels are just linear functionals, so arrays concatenate freely.
    let mut hybrid_solver = {
        let cfg = TwinConfig::tiny();
        cfg.build_solver()
    };
    let mut channels = SensorArray::das_fiber(&hybrid_solver.op, &pts, 0.05).channels;
    channels.extend(
        SensorArray::on_seafloor(
            &hybrid_solver.op,
            &TwinConfig::tiny().sensor_positions(),
            0.05,
        )
        .channels,
    );
    hybrid_solver.sensors = SensorArray { channels };
    let cfg = TwinConfig::tiny();
    let calib_h = SyntheticEvent::generate(&cfg, &hybrid_solver, &rupture, 7);
    let factors_h = whitening_factors(&calib_h.d_clean, hybrid_solver.sensors.len());
    hybrid_solver.sensors.rescale_channels(&factors_h);
    let ev_h = SyntheticEvent::generate(&cfg, &hybrid_solver, &rupture, 99);
    let timers = TimerRegistry::new();
    let p1h = Phase1::build(&hybrid_solver, &timers);
    let p2h = Phase2::build(&p1h, &cfg.build_prior(), ev_h.noise_std, &timers);
    let p3h = Phase3::build(&p1h, &p2h, &timers);
    let inf_h = phase4::infer(&p1h, &p2h, &ev_h.d_obs);
    let fc_h = phase4::predict(&p3h, &ev_h.d_obs);
    let b_h = displacement_field(&inf_h.m_map, nm, nt, dt);
    println!(
        "\nhybrid fiber + gauges ({} channels):",
        hybrid_solver.sensors.len()
    );
    println!(
        "  displacement correlation: {:.3}",
        correlation(&b_h, &b_true)
    );
    println!(
        "  QoI forecast rel-L2:      {:.3}",
        rel_l2(&fc_h.q_map, &ev_h.q_true)
    );

    println!("\nDAS channels sense gradients, so they trade absolute-pressure");
    println!("sensitivity for dense spatial coverage; co-deploying the fiber");
    println!("with a few point gauges combines both, and the twin machinery is");
    println!("identical in every case — one adjoint solve per channel.");
}

/// Per-channel factors that equalize RMS across a time-major record
/// (channels with zero signal keep factor 1).
fn whitening_factors(d_clean: &[f64], nd: usize) -> Vec<f64> {
    let nt = d_clean.len() / nd;
    let mut rms = vec![0.0f64; nd];
    for i in 0..nt {
        for c in 0..nd {
            rms[c] += d_clean[i * nd + c].powi(2);
        }
    }
    let target = (rms.iter().sum::<f64>() / (nd * nt) as f64).sqrt();
    rms.iter()
        .map(|&s| {
            let r = (s / nt as f64).sqrt();
            if r > 0.0 {
                target / r
            } else {
                1.0
            }
        })
        .collect()
}
