//! Scaling study: measured host thread-scaling plus the modeled Fig 5
//! machine projections.
//!
//! Part 1 measures *real* strong scaling of the Fused-PA operator on this
//! machine's cores (rayon thread pools of increasing size). Part 2 projects
//! the paper's systems with the α–β–γ model.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use cascadia_dt::prelude::*;
use std::sync::Arc;
use tsunami_fem::kernels::{make_kernel, KernelContext};
use tsunami_hpc::scaling::{ComputeCost, ScalingStudy};

fn main() {
    // --- Part 1: honest host measurements.
    let n = 12;
    let mesh = Arc::new(HexMesh::terrain_following(
        n,
        n,
        n,
        50e3,
        50e3,
        &FlatBathymetry { depth: 3000.0 },
    ));
    let ncores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(4);
    println!(
        "== host strong scaling (measured, {} elements, order 4) ==",
        n * n * n
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "threads", "t/apply", "GDOF/s", "speedup"
    );
    let mut t1 = 0.0;
    let mut threads = 1usize;
    while threads <= ncores {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let (t, dofs) = pool.install(|| {
            let ctx = Arc::new(KernelContext::new(mesh.clone(), 4));
            let kernel = make_kernel(KernelVariant::FusedPa, ctx.clone());
            let p = vec![1.0; ctx.n_p()];
            let u = vec![1.0; ctx.n_u()];
            let mut ou = vec![0.0; ctx.n_u()];
            let mut op = vec![0.0; ctx.n_p()];
            kernel.apply_fused(&p, &u, &mut ou, &mut op); // warmup
            let reps = 5;
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                kernel.apply_fused(&p, &u, &mut ou, &mut op);
            }
            (t0.elapsed().as_secs_f64() / reps as f64, ctx.n_dofs())
        });
        if threads == 1 {
            t1 = t;
        }
        println!(
            "{threads:>8} {:>10.2} ms {:>10.3} {:>9.2}x",
            t * 1e3,
            dofs as f64 / t / 1e9,
            t1 / t
        );
        threads *= 2;
    }

    // --- Part 2: modeled machine projections (Fig 5).
    println!("\n== modeled projections (Fig 5; see DESIGN.md for the model) ==");
    let studies = [
        (
            "El Capitan",
            ScalingStudy::weak(
                EL_CAPITAN,
                (171, 171, 171),
                &[340, 2720, 10_880, 43_520],
                256,
                25,
                4,
                ComputeCost::MachineThroughput,
            ),
        ),
        (
            "Alps",
            ScalingStudy::weak(
                ALPS,
                (158, 158, 158),
                &[144, 1152, 9216],
                256,
                25,
                4,
                ComputeCost::MachineThroughput,
            ),
        ),
        (
            "Perlmutter",
            ScalingStudy::weak(
                PERLMUTTER,
                (116, 116, 116),
                &[188, 1504, 6016],
                256,
                25,
                4,
                ComputeCost::MachineThroughput,
            ),
        ),
    ];
    for (name, study) in &studies {
        let eff = study.weak_efficiency();
        let last = study.points.last().unwrap();
        println!(
            "{name:>12}: weak efficiency {:.0}% at {} GPUs ({:.1}T DOF, {:.3} s/step)",
            100.0 * eff.last().unwrap(),
            last.ranks,
            last.total_dofs as f64 / 1e12,
            last.step_time()
        );
    }
    println!("\npaper: El Capitan 92% @43,520 GPUs (55.5T DOF), Alps 99%, Perlmutter ~100%");
}
