//! The full §VIII chain: fault slip → seismic wavefield → seafloor motion
//! → ocean acoustics → tsunami inversion and forecast.
//!
//! A kinematic rupture slips on the megathrust; the elastic section
//! propagates the waves to the seafloor; the one-way coupling extrudes the
//! seafloor velocity into the acoustic twin's source field (2.5D); the
//! acoustic–gravity model generates ocean-bottom pressure; and the digital
//! twin inverts that pressure for the seafloor motion it never saw
//! directly — closing the loop two PDE systems away from the fault.
//!
//! ```text
//! cargo run --release --example coupled_chain
//! ```

use cascadia_dt::elastic::{
    DippingFault, ElasticGrid, ElasticSolver, LayeredMedium, SeafloorCoupling, SlipScenario,
};
use cascadia_dt::linalg::random::{fill_randn, seeded_rng};
use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{correlation, rel_l2};

fn main() {
    println!("== Coupled chain: fault slip -> seismics -> seafloor -> tsunami twin ==\n");

    // Acoustic twin configuration (the ocean side).
    let cfg = TwinConfig::tiny();
    let (gx, gy) = cfg.inv_grid;
    let nt = cfg.nt_obs;
    let cadence = cfg.dt_obs;

    // Elastic margin section (the solid-Earth side), sized so its surface
    // band maps onto the acoustic domain's seafloor (scaled embedding).
    let width = 36_000.0;
    let depth = 18_000.0;
    let grid = ElasticGrid::new(36, 18, 1000.0, 1000.0, 5, 0.94);
    let medium = LayeredMedium::cascadia_margin(depth);
    let fault = DippingFault::megathrust(width, depth, 6);
    let elastic = ElasticSolver::new(
        grid,
        &medium,
        fault,
        &[10_000.0, 20_000.0, 30_000.0],
        &[30_000.0],
        cadence,
        nt,
        0.5,
    );
    println!(
        "elastic section: {} patches, {} bins x {} substeps (dt {:.3} s)",
        elastic.n_m(),
        elastic.nt_obs,
        elastic.steps_per_bin,
        elastic.dt
    );

    // 1. The earthquake: kinematic slip on the fault.
    let scenario = SlipScenario::partial_rupture(elastic.n_m());
    let m_slip = scenario.slip_rates(
        elastic.n_m(),
        elastic.fault.patch_length(),
        cadence,
        elastic.nt_obs,
    );

    // 2. Solid-Earth propagation + one-way coupling to the seafloor.
    let coupling = SeafloorCoupling::new(&elastic, gx, width, 2_500.0, 0.5, 0.25);
    let t0 = std::time::Instant::now();
    let m_seafloor = coupling.seafloor_velocity(&elastic, &m_slip, gx, gy, cfg.ly, nt, cadence);
    // Scale the coupled source into the tsunami-relevant range (the scaled
    // acoustic demo domain expects ~m/s seafloor velocities).
    let peak = m_seafloor.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let m_true: Vec<f64> = m_seafloor.iter().map(|&v| v / peak).collect();
    println!(
        "coupled seafloor source: peak |vz| {:.3e} (elastic solve + extrusion {:.2} s)",
        peak,
        t0.elapsed().as_secs_f64()
    );

    // 3. Ocean acoustics: pressure at the OBP sensors, 1% noise.
    let solver = cfg.build_solver();
    let (d_clean, q_true) = solver.forward(&m_true);
    let rms = (d_clean.iter().map(|v| v * v).sum::<f64>() / d_clean.len() as f64).sqrt();
    let noise_std = 0.01 * rms;
    let mut rng = seeded_rng(99);
    let mut noise = vec![0.0; d_clean.len()];
    fill_randn(&mut rng, &mut noise);
    let d_obs: Vec<f64> = d_clean
        .iter()
        .zip(&noise)
        .map(|(&c, &n)| c + noise_std * n)
        .collect();
    drop(solver);

    // 4. The digital twin inverts the pressure record.
    let twin = DigitalTwin::offline(cfg, noise_std);
    let inf = twin.infer(&d_obs);
    let fc = twin.forecast(&d_obs);

    // The coupled source is transient seismic motion (no static offset),
    // so the meaningful recovery metric is the spatiotemporal velocity
    // field itself, not its (near-zero) time integral.
    println!("\nend-to-end results (two PDE systems between slip and data):");
    println!(
        "  seafloor velocity-field correlation: {:.3}",
        correlation(&inf.m_map, &m_true)
    );
    println!(
        "  wave-height forecast rel-L2:       {:.3}",
        rel_l2(&fc.q_map, &q_true)
    );
    println!(
        "  online latency: infer {:.2} ms, forecast {:.3} ms",
        inf.seconds * 1e3,
        fc.seconds * 1e3
    );
    println!("\nThe twin never sees the fault: it reconstructs the seafloor motion");
    println!("that the elastic wavefield actually produced — rupture complexity,");
    println!("asperities, and rupture-speed effects included — which is the");
    println!("paper's argument for inverting seafloor motion instead of assuming");
    println!("a fault model (Section III-A).");
}
