//! Posterior exploration beyond the mean: exact samples via Matheron's
//! rule, pointwise uncertainty maps, and scenario spread at the coast.
//!
//! The paper emphasizes that the twin solves the *Bayesian* problem — not
//! just a regularized least-squares fit — so one can draw exact posterior
//! samples and propagate each through the p2q map to get an ensemble of
//! plausible coastal outcomes consistent with the data.
//!
//! ```text
//! cargo run --release --example posterior_samples
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::displacement_field;
use cascadia_dt::twin::posterior::posterior_sample;
use tsunami_linalg::random::seeded_rng;

fn main() {
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 31);
    drop(solver);

    let twin = DigitalTwin::offline(config.clone(), event.noise_std);
    let stp = SpaceTimePrior::new(config.build_prior(), twin.solver.grid.nt_obs);
    let inference = twin.infer(&event.d_obs);

    let nm = twin.solver.n_m();
    let nt = twin.solver.grid.nt_obs;
    let dt = twin.solver.grid.dt_obs();
    let nq = twin.solver.qoi.len();

    // Draw an ensemble and push each member through the p2q map.
    let n_samples = 30;
    let mut rng = seeded_rng(2026);
    println!("drawing {n_samples} exact posterior samples (Matheron's rule)...\n");
    let mut peak_eta_per_sample: Vec<f64> = Vec::with_capacity(n_samples);
    let mut b_mean = vec![0.0; nm];
    let mut b_m2 = vec![0.0; nm];
    for _ in 0..n_samples {
        let s = posterior_sample(&twin.phase1, &twin.phase2, &stp, &inference.m_map, &mut rng);
        let b = displacement_field(&s, nm, nt, dt);
        for ((mu, m2), &v) in b_mean.iter_mut().zip(b_m2.iter_mut()).zip(&b) {
            *mu += v / n_samples as f64;
            *m2 += v * v / n_samples as f64;
        }
        let mut q = vec![0.0; nq * nt];
        twin.phase1.fast_fq.matvec(&s, &mut q);
        let peak = q.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        peak_eta_per_sample.push(peak);
    }

    // Ensemble statistics of the peak coastal wave height — the number an
    // emergency manager acts on.
    peak_eta_per_sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p10 = peak_eta_per_sample[n_samples / 10];
    let p50 = peak_eta_per_sample[n_samples / 2];
    let p90 = peak_eta_per_sample[9 * n_samples / 10];
    let mut q_true_peak = 0.0f64;
    for &v in &event.q_true {
        q_true_peak = q_true_peak.max(v.abs());
    }
    println!("peak coastal wave height, posterior ensemble:");
    println!("  p10 / p50 / p90 : {p10:.3} / {p50:.3} / {p90:.3} m");
    println!("  true peak       : {q_true_peak:.3} m");
    println!(
        "  truth within ensemble range: {}",
        q_true_peak >= peak_eta_per_sample[0]
            && q_true_peak <= *peak_eta_per_sample.last().unwrap()
    );

    // Sample-based displacement std vs the exact formula — a consistency
    // check the operator algebra makes cheap.
    let exact_std = twin.displacement_uncertainty();
    let sample_std: Vec<f64> = b_mean
        .iter()
        .zip(&b_m2)
        .map(|(&mu, &m2)| (m2 - mu * mu).max(0.0).sqrt())
        .collect();
    let mean_exact = exact_std.iter().sum::<f64>() / nm as f64;
    let mean_sample = sample_std.iter().sum::<f64>() / nm as f64;
    println!("\ndisplacement uncertainty (mean over cells):");
    println!("  exact (Phase 2 algebra): {mean_exact:.3} m");
    println!("  {n_samples}-sample estimate     : {mean_sample:.3} m");
    println!(
        "  ratio                  : {:.2} (→ 1 as samples grow)",
        mean_sample / mean_exact
    );
}
