//! Real-time latency drill: assimilate a stream of events and report the
//! online latency distribution — the operational "< 0.2 s / < 1 ms" claim
//! of Table III, plus the §VIII observation that forecasts alone need no
//! HPC at all (a single dense matvec).
//!
//! ```text
//! cargo run --release --example realtime_latency
//! ```

use cascadia_dt::prelude::*;
use tsunami_linalg::random::{fill_randn, seeded_rng};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn main() {
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 3);
    drop(solver);
    let twin = DigitalTwin::offline(config, event.noise_std);

    // Simulate a stream of 200 events: same physics, fresh noise each time
    // (what the warning center actually sees).
    let mut rng = seeded_rng(99);
    let mut infer_times = Vec::new();
    let mut forecast_times = Vec::new();
    let mut noise = vec![0.0; event.d_clean.len()];
    for _ in 0..200 {
        fill_randn(&mut rng, &mut noise);
        let d: Vec<f64> = event
            .d_clean
            .iter()
            .zip(&noise)
            .map(|(&c, &n)| c + event.noise_std * n)
            .collect();
        infer_times.push(twin.infer(&d).seconds);
        forecast_times.push(twin.forecast(&d).seconds);
    }
    infer_times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    forecast_times.sort_by(|a, b| a.partial_cmp(b).unwrap());

    println!("== online latency over 200 assimilations ==");
    println!(
        "infer m_map   : p50 {:.3} ms, p95 {:.3} ms, max {:.3} ms   (paper: < 200 ms at Nm*Nt = 10^9 on 512 GPUs)",
        percentile(&infer_times, 0.5) * 1e3,
        percentile(&infer_times, 0.95) * 1e3,
        infer_times.last().unwrap() * 1e3
    );
    println!(
        "forecast QoI  : p50 {:.4} ms, p95 {:.4} ms, max {:.4} ms   (paper: < 1 ms on one GPU)",
        percentile(&forecast_times, 0.5) * 1e3,
        percentile(&forecast_times, 0.95) * 1e3,
        forecast_times.last().unwrap() * 1e3
    );

    // The "no HPC needed" deployment: the data-to-QoI map Q is a small
    // dense matrix; print its footprint.
    let q = &twin.phase3.q_map;
    println!(
        "\ndata-to-QoI map Q: {} x {} = {:.2} MiB — deployable on a laptop or embedded warning node",
        q.nrows(),
        q.ncols(),
        (q.nrows() * q.ncols() * 8) as f64 / (1 << 20) as f64
    );
    println!(
        "warning budget: tsunami arrival in minutes; total online latency here {:.3} ms",
        (percentile(&infer_times, 0.95) + percentile(&forecast_times, 0.95)) * 1e3
    );
}
