//! Quickstart: the full digital-twin loop on a toy domain, in seconds.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, rel_l2};

fn main() {
    println!("== Cascadia digital twin: quickstart ==\n");
    let config = TwinConfig::tiny();
    println!(
        "domain {:.0} x {:.0} km, {} elements, order {}, Nd={} sensors, Nq={} forecast points",
        config.lx / 1e3,
        config.ly / 1e3,
        config.nx * config.ny * config.nz,
        config.order,
        config.n_sensors(),
        config.n_qoi
    );

    // 1. Synthesize the "truth": a kinematic rupture drives the acoustic-
    //    gravity model; sensors record pressure with 1% noise.
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    println!(
        "synthetic event: {} observations, noise std {:.3e} Pa",
        event.d_obs.len(),
        event.noise_std
    );
    drop(solver);

    // 2. Offline phases (run once per sensor network, not per event).
    let t0 = std::time::Instant::now();
    let twin = DigitalTwin::offline(config, event.noise_std);
    println!("offline phases 1-3: {:.2} s", t0.elapsed().as_secs_f64());

    // 3. Online: the earthquake happens, data arrive, we invert + forecast.
    let inference = twin.infer(&event.d_obs);
    let forecast = twin.forecast(&event.d_obs);
    println!(
        "online: infer {:.3} ms, forecast {:.3} ms  (paper targets: <200 ms, <1 ms)",
        inference.seconds * 1e3,
        forecast.seconds * 1e3
    );

    // 4. How did we do?
    println!("\nforecast quality:");
    println!(
        "  relative L2 error vs true wave heights: {:.3}",
        rel_l2(&forecast.q_map, &event.q_true)
    );
    println!(
        "  95% CI coverage of the truth:           {:.0}%",
        100.0 * ci95_coverage(&forecast.q_map, &forecast.q_std, &event.q_true)
    );
    let nq = twin.solver.qoi.len();
    let nt = twin.solver.grid.nt_obs;
    println!("\nwave-height forecast at location #0:");
    println!(
        "  {:>6}  {:>9}  {:>9}  {:>22}",
        "t (s)", "true (m)", "pred (m)", "95% CI"
    );
    for i in 0..nt {
        let idx = i * nq;
        let (lo, hi) = forecast.ci95(idx);
        println!(
            "  {:>6.1}  {:>9.4}  {:>9.4}  [{:>9.4}, {:>9.4}]",
            (i + 1) as f64 * twin.solver.grid.dt_obs(),
            event.q_true[idx],
            forecast.q_map[idx],
            lo,
            hi
        );
    }
}
