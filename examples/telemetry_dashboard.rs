//! Telemetry dashboard: the observability spine end to end on one
//! mixed-backend streaming replay.
//!
//! A bank of rupture scenarios is replayed as interleaved live feeds into
//! a *goal-oriented* engine that identifies in POD *mode space* — the
//! cheapest online configuration — and every layer of telemetry the
//! engine produces is rendered afterwards:
//!
//! 1. the per-stage tick-latency table (p50/p95/p99 from the registry's
//!    log2 histograms: drain / identify / assimilate / classify),
//! 2. the per-rung assimilation latencies across the window ladder,
//! 3. the warning audit trail for one session (every level transition
//!    with the credible band and top posterior scenario behind it),
//! 4. the full Prometheus-style exposition, validated by the same parser
//!    CI uses ([`cascadia_dt::obs::validate_exposition`]).
//!
//! ```text
//! cargo run --release --example telemetry_dashboard
//! ```
//!
//! Set `OBS=off` to disable all recording: the dashboard then prints an
//! empty registry while the engine runs at its uninstrumented speed (the
//! `service_scale` bench gates that overhead at ≤ 1% per tick).

use cascadia_dt::obs::{validate_exposition, Metric};
use cascadia_dt::prelude::*;

fn main() {
    println!("== Telemetry dashboard: goal-oriented + mode-space replay ==\n");
    let config = TwinConfig::tiny();

    // Offline: scenario bank, POD compression of the bank, and the
    // rank-4 goal ladder the online engine will forecast through.
    let n_sessions = 6;
    let specs = ScenarioBank::family(&config, n_sessions, 7);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let windows: Vec<usize> = [1, 2, 4, 8, nt]
        .iter()
        .cloned()
        .filter(|&w| w <= nt)
        .collect();
    let ladder = twin.goal_ladder(&windows, &GoalOptions::rank(4));
    let pod = bank.compress_energy(0.9999, bank.len());
    println!(
        "bank: {} scenarios · POD rank {} · goal ladder {:?} steps · {} sensors",
        bank.len(),
        pod.rank(),
        windows,
        nd
    );

    // Online: interleaved replay, one observation step per session per
    // round, one engine tick per round.
    let stream_cfg = StreamConfig {
        chunk: 4,
        warn_threshold: 1.0,
        infer: false,
        identify: IdentifyBackend::ModeSpace,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::goal_oriented(&twin, &ladder, stream_cfg)
        .with_bank(&bank)
        .with_pod(&pod);
    let ids: Vec<usize> = (0..bank.len()).map(|_| engine.open()).collect();
    let feeds: Vec<Vec<f64>> = (0..bank.len())
        .map(|j| bank.observations().col(j))
        .collect();
    for t in 0..nt {
        for (d, &id) in feeds.iter().zip(&ids) {
            engine.push(id, &d[t * nd..(t + 1) * nd]);
        }
        engine.tick();
    }
    let em = *engine.metrics();
    println!(
        "replayed {} ticks: {} assimilations, {} panels, total {:.2} ms\n",
        em.ticks,
        em.assimilations,
        em.panels,
        em.seconds * 1e3
    );

    // 1. Per-stage latency table straight from the registry histograms.
    let reg = engine.registry();
    println!("--- per-stage tick latency (per shard-visit) ---");
    println!(
        "{:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "mean µs", "p50 µs", "p95 µs", "p99 µs"
    );
    let stage_row = |name: &str| {
        if let Some(Metric::Histogram(h)) = reg.get(name) {
            let s = h.snapshot();
            println!(
                "{:<24} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                name,
                s.count,
                s.mean() / 1e3,
                s.quantile(0.5) as f64 / 1e3,
                s.quantile(0.95) as f64 / 1e3,
                s.quantile(0.99) as f64 / 1e3
            );
        }
    };
    for stage in ["drain", "identify", "assimilate", "classify", "total"] {
        stage_row(&format!("stream.tick.{stage}"));
    }

    // 2. Per-rung assimilation cost across the window ladder.
    println!("\n--- per-rung assimilation latency ---");
    for w in 0..windows.len() {
        stage_row(&format!("stream.rung.{w}.assimilate"));
    }

    // 3. The audit trail for the loudest session.
    let loud = ids
        .iter()
        .max_by_key(|&&id| engine.audit_for(id).count())
        .copied()
        .unwrap_or(0);
    println!(
        "\n--- audit trail: session S{loud} ({} transitions engine-wide) ---",
        engine.audit().len()
    );
    for tr in engine.audit_for(loud) {
        let top = tr
            .top_scenario
            .map(|(s, p)| format!("#{s} (p = {p:.2})"))
            .unwrap_or_else(|| "-".into());
        println!(
            "  tick {:>2} rung {}: {:<9} -> {:<9} | band [{:>6.2}, {:>6.2}] m | top {top} | {:?}",
            tr.tick, tr.rung, tr.from, tr.to, tr.band_lo, tr.band_hi, tr.backend
        );
    }

    // 4. The machine-facing views: validated Prometheus exposition and
    //    the equivalent JSON snapshot.
    let text = reg.render_prometheus();
    match validate_exposition(&text) {
        Ok(samples) => println!("\n--- exposition ({samples} samples, parser-clean) ---"),
        Err(e) => {
            eprintln!("exposition failed validation: {e}");
            std::process::exit(1);
        }
    }
    print!("{text}");
    println!(
        "\n(JSON snapshot: {} bytes via Registry::render_json)",
        reg.render_json().len()
    );
}
