//! POD mode-space identification + superposition forecasting on an
//! off-bank event.
//!
//! The scenario bank is compressed to a handful of POD modes
//! (`ScenarioBank::compress`); the streaming engine then identifies in
//! mode space at `r × B` cost per tick instead of `rows × B`
//! (`IdentifyBackend::ModeSpace`). The live event is deliberately *not in
//! the bank*: it is an even blend of two bank scenarios, so by linearity
//! of the forward model its true forecast is the blend of their
//! forecasts. A best-fit (single-scenario) forecast must pick one of the
//! two and eat the full gap between them; the posterior-weighted
//! **superposition** (`StreamEngine::superposed_forecast`) mixes the
//! bank's forecasts under the identification posterior and lands near the
//! blended truth — with a credible band honestly widened by the
//! between-scenario spread.
//!
//! ```text
//! cargo run --release --example pod_superposition
//! ```

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::rel_l2;

fn main() {
    println!("== POD mode-space identification + superposition forecast ==\n");
    let config = TwinConfig::tiny();

    // 1. Offline: scenario bank, twin, window ladder, and per-scenario
    //    forecasts from the bank's clean observations.
    let n_scenarios = 8;
    let specs = ScenarioBank::family(&config, n_scenarios, 13);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let forecaster = twin.windowed(&[nt]);
    let w_last = forecaster.windows.len() - 1;
    let bank_fc = forecaster.forecast_batch(w_last, bank.clean_observations());

    // 2. POD-compress the bank and report the rank/energy tradeoff.
    println!("rank/energy tradeoff of the clean block:");
    for r in [1, 2, 4, n_scenarios] {
        let p = bank.compress(r);
        println!(
            "  r = {:>2}: captured energy {:>8.4} %, max residual {:.3e}",
            p.rank(),
            100.0 * p.captured_energy(),
            p.residual_energy().iter().cloned().fold(0.0, f64::max)
        );
    }
    let pod = bank.compress_energy(0.9999, n_scenarios);
    println!(
        "\nusing r = {} modes ({:.4} % of the energy) for identification\n",
        pod.rank(),
        100.0 * pod.captured_energy()
    );

    // 3. The off-bank event: an even blend of two bank scenarios. By
    //    linearity, its clean observations and its true forecast are the
    //    same blend.
    let (a, b) = (1usize, 4usize);
    let ca = bank.clean_observations().col(a);
    let cb = bank.clean_observations().col(b);
    let d_event: Vec<f64> = ca.iter().zip(&cb).map(|(x, y)| 0.5 * (x + y)).collect();
    let fa = bank_fc.scenario(a);
    let fb = bank_fc.scenario(b);
    let q_truth: Vec<f64> = fa
        .q_map
        .iter()
        .zip(&fb.q_map)
        .map(|(x, y)| 0.5 * (x + y))
        .collect();
    println!("live event: 0.5 · (scenario {a}) + 0.5 · (scenario {b})  — not in the bank");

    // 4. Stream it through the engine in mode space.
    let stream_cfg = StreamConfig {
        identify: IdentifyBackend::ModeSpace,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(&twin, &forecaster, stream_cfg)
        .with_bank(&bank)
        .with_pod(&pod);
    let id = engine.open();
    let step = twin.solver.sensors.len();
    let mut fed = 0;
    while fed < d_event.len() {
        let hi = (fed + step).min(d_event.len());
        engine.push(id, &d_event[fed..hi]);
        fed = hi;
        engine.tick();
    }

    let matches = engine.ranked_matches(id);
    println!("\nidentification posterior (top 4 of {}):", matches.len());
    for m in matches.iter().take(4) {
        println!("  scenario {:>2}: p = {:.3}", m.scenario, m.probability);
    }

    // 5. Best-fit single scenario vs posterior-weighted superposition.
    let best_fit = bank_fc.scenario(matches[0].scenario);
    let mix = engine.superposed_forecast(id, &bank_fc);
    let err_best = rel_l2(&best_fit.q_map, &q_truth);
    let err_mix = rel_l2(&mix.q_map, &q_truth);
    println!("\nforecast error against the blended truth (rel L2):");
    println!(
        "  best-fit scenario {:>2}: {:.3e}",
        matches[0].scenario, err_best
    );
    println!("  superposition       : {:.3e}", err_mix);
    println!(
        "  band widening (mean q_std ratio): {:.2}x",
        mix.q_std.iter().sum::<f64>() / best_fit.q_std.iter().sum::<f64>().max(1e-300)
    );
    assert!(
        err_mix < err_best,
        "superposition must beat the best-fit forecast on an off-bank blend"
    );
    println!(
        "\nsuperposition beats best-fit: {:.1}x closer to the blended truth",
        err_best / err_mix.max(1e-300)
    );
}
