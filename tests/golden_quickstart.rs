//! Golden regression test: pins the quickstart (`TwinConfig::tiny()`,
//! event seed 42) posterior-mean and forecast-CI numbers.
//!
//! The batch-first refactor routes the single-vector `infer`/`forecast`
//! through the batched kernels as B=1 wrappers; this test proves the B=1
//! numerics did not drift (and guards every future refactor of the FFT /
//! solve spine the same way). Tolerances are 1e-7 relative — far above
//! roundoff reshuffling, far below any real numerical change.

use cascadia_dt::prelude::*;

/// Relative agreement check against a pinned golden value.
fn close(got: f64, want: f64, what: &str) {
    let tol = 1e-7 * want.abs().max(1e-12);
    assert!(
        (got - want).abs() <= tol,
        "{what} drifted: got {got:.15e}, golden {want:.15e}"
    );
}

#[test]
fn quickstart_numbers_match_golden() {
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    drop(solver);

    let twin = DigitalTwin::offline(config, event.noise_std);
    let inference = twin.infer(&event.d_obs);
    let forecast = twin.forecast(&event.d_obs);

    let m_norm = inference.m_map.iter().map(|v| v * v).sum::<f64>().sqrt();
    let m_absmax = inference.m_map.iter().fold(0.0f64, |a, v| a.max(v.abs()));
    let q_norm = forecast.q_map.iter().map(|v| v * v).sum::<f64>().sqrt();
    let (ci_lo, ci_hi) = forecast.ci95(0);

    close(event.noise_std, GOLDEN_NOISE_STD, "noise_std");
    close(m_norm, GOLDEN_M_NORM, "‖m_map‖₂");
    close(m_absmax, GOLDEN_M_ABSMAX, "max|m_map|");
    close(inference.m_map[0], GOLDEN_M_FIRST, "m_map[0]");
    close(q_norm, GOLDEN_Q_NORM, "‖q_map‖₂");
    close(forecast.q_map[0], GOLDEN_Q_FIRST, "q_map[0]");
    close(
        *forecast.q_map.last().unwrap(),
        GOLDEN_Q_LAST,
        "q_map[last]",
    );
    close(forecast.q_std[0], GOLDEN_QSTD_FIRST, "q_std[0]");
    close(ci_lo, GOLDEN_CI0_LO, "ci95(0).lo");
    close(ci_hi, GOLDEN_CI0_HI, "ci95(0).hi");

    // Windowed online path: pin the half-horizon forecast (the operator
    // the streaming engine rides). Guards the leading-block multi-RHS
    // solve and the WindowedForecaster build the same way the full-window
    // numbers guard the Phase-4 spine.
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let w = nt / 2;
    let wf = twin.windowed(&[w]);
    let wfc = wf.forecast(0, &event.d_obs[..w * nd]);
    let wq_norm = wfc.q_map.iter().map(|v| v * v).sum::<f64>().sqrt();
    close(wq_norm, GOLDEN_WQ_NORM, "windowed ‖q_map‖₂");
    close(wfc.q_map[0], GOLDEN_WQ_FIRST, "windowed q_map[0]");
    close(
        *wfc.q_map.last().unwrap(),
        GOLDEN_WQ_LAST,
        "windowed q_map[last]",
    );
    close(wfc.q_std[0], GOLDEN_WQSTD_FIRST, "windowed q_std[0]");
    close(
        *wfc.q_std.last().unwrap(),
        GOLDEN_WQSTD_LAST,
        "windowed q_std[last]",
    );
}

// Golden values recorded from the quickstart flow at the batch-first
// refactor (seed 42, TwinConfig::tiny()). Regenerate by printing the
// measured quantities above if an *intentional* numerical change lands.
const GOLDEN_NOISE_STD: f64 = 1.5840007285903332e2;
const GOLDEN_M_NORM: f64 = 9.776409991554305e-1;
const GOLDEN_M_ABSMAX: f64 = 2.0461262466475966e-1;
const GOLDEN_M_FIRST: f64 = 3.1703365567214837e-3;
const GOLDEN_Q_NORM: f64 = 2.175973792574409e0;
const GOLDEN_Q_FIRST: f64 = 8.427820751237089e-5;
const GOLDEN_Q_LAST: f64 = 2.966055170793353e-1;
const GOLDEN_QSTD_FIRST: f64 = 2.075809616474718e-3;
const GOLDEN_CI0_LO: f64 = -3.984233879539979e-3;
const GOLDEN_CI0_HI: f64 = 4.1527902945647215e-3;

// Windowed (half-horizon) forecast, recorded when the windowed online
// path went multi-RHS (PR 4).
const GOLDEN_WQ_NORM: f64 = 2.19342932478581e0;
const GOLDEN_WQ_FIRST: f64 = 7.860876466788191e-5;
const GOLDEN_WQ_LAST: f64 = 3.471369894750682e-1;
const GOLDEN_WQSTD_FIRST: f64 = 2.170021184652439e-3;
const GOLDEN_WQSTD_LAST: f64 = 6.034789015618633e0;
