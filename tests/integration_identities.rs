//! Cross-crate Bayesian identities, exercised via the public facade:
//! the Sherman–Morrison–Woodbury equivalence, the Kalman-gain identity,
//! and agreement between every route to the MAP point.

use cascadia_dt::prelude::*;
use cascadia_dt::twin::baseline::solve_map_cg;
use cascadia_dt::twin::metrics::rel_l2;
use cascadia_dt::twin::SpaceTimePrior;
use tsunami_linalg::cg::CgOptions;

fn setup() -> (TwinConfig, SyntheticEvent, DigitalTwin) {
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 555);
    let twin = DigitalTwin::offline(config.clone(), event.noise_std);
    (config, event, twin)
}

#[test]
fn three_routes_to_the_map_point_agree() {
    // Route 1: data-space SMW (Phase 4). Route 2: parameter-space CG
    // (the SoA baseline). Route 3: Fq m_map vs Q d (Kalman gain).
    let (config, event, twin) = setup();
    let m_smw = twin.infer(&event.d_obs).m_map;

    let stp = SpaceTimePrior::new(config.build_prior(), twin.solver.grid.nt_obs);
    let opts = CgOptions {
        rtol: 1e-11,
        max_iter: 20_000,
        ..Default::default()
    };
    let (m_cg, stats) = solve_map_cg(
        &twin.phase1.fast_f,
        &stp,
        event.noise_std * event.noise_std,
        &event.d_obs,
        &opts,
    );
    assert!(stats.converged);
    assert!(
        rel_l2(&m_smw, &m_cg) < 1e-6,
        "SMW vs CG disagree: {}",
        rel_l2(&m_smw, &m_cg)
    );

    let fc = twin.forecast(&event.d_obs);
    let mut q_from_m = vec![0.0; twin.phase1.fast_fq.nrows()];
    twin.phase1.fast_fq.matvec(&m_smw, &mut q_from_m);
    assert!(
        rel_l2(&fc.q_map, &q_from_m) < 1e-6,
        "Q d vs Fq m_map disagree: {}",
        rel_l2(&fc.q_map, &q_from_m)
    );
}

#[test]
fn map_point_satisfies_optimality() {
    // The MAP point minimizes J(m); its gradient must vanish:
    // Fᵀ(F m − d)/σ² + Γ⁻¹ m = 0.
    let (config, event, twin) = setup();
    let m = twin.infer(&event.d_obs).m_map;
    let stp = SpaceTimePrior::new(config.build_prior(), twin.solver.grid.nt_obs);
    let f = &twin.phase1.fast_f;
    let sigma2 = event.noise_std * event.noise_std;

    let mut fm = vec![0.0; f.nrows()];
    f.matvec(&m, &mut fm);
    let misfit: Vec<f64> = fm.iter().zip(&event.d_obs).map(|(a, b)| a - b).collect();
    let mut grad_data = vec![0.0; f.ncols()];
    f.matvec_transpose(&misfit, &mut grad_data);
    let mut grad_prior = vec![0.0; f.ncols()];
    stp.apply_inv(&m, &mut grad_prior);
    let grad: Vec<f64> = grad_data
        .iter()
        .zip(&grad_prior)
        .map(|(a, b)| a / sigma2 + b)
        .collect();
    // Scale: compare against the gradient at m = 0.
    let mut grad0 = vec![0.0; f.ncols()];
    f.matvec_transpose(&event.d_obs, &mut grad0);
    let g0: f64 = grad0
        .iter()
        .map(|v| (v / sigma2) * (v / sigma2))
        .sum::<f64>()
        .sqrt();
    let g: f64 = grad.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(g < 1e-6 * g0, "MAP gradient not zero: {g} vs scale {g0}");
}

#[test]
fn posterior_mean_interpolates_prior_and_data() {
    // σ → ∞: m_map → 0 (prior mean). σ → 0⁺: F m_map → d (data fit).
    let (config, event, twin) = setup();

    let m_ref = twin.infer(&event.d_obs).m_map;
    let ref_norm: f64 = m_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
    let loose = DigitalTwin::offline(config.clone(), 1e5 * event.noise_std);
    let m_loose = loose.infer(&event.d_obs).m_map;
    let norm: f64 = m_loose.iter().map(|v| v * v).sum::<f64>().sqrt();
    assert!(
        norm < 5e-2 * ref_norm,
        "distrusted data should shrink toward the prior mean: ‖m‖={norm} vs reference {ref_norm}"
    );

    let tight = DigitalTwin::offline(config, 1e-4 * event.noise_std);
    let m_tight = tight.infer(&event.d_clean).m_map;
    let mut fm = vec![0.0; tight.phase1.fast_f.nrows()];
    tight.phase1.fast_f.matvec(&m_tight, &mut fm);
    let fit = rel_l2(&fm, &event.d_clean);
    assert!(
        fit < 0.05,
        "tiny noise should fit the data: rel misfit {fit}"
    );
}

#[test]
fn toeplitz_map_agrees_with_pde_on_random_input() {
    // The precomputed F (Phase 1) applied by FFT must reproduce a fresh PDE
    // forward solve on inputs it was never built from.
    let (config, _event, twin) = setup();
    let solver = config.build_solver();
    let mut seed = 77u64;
    let m: Vec<f64> = (0..twin.n_params())
        .map(|_| {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let (d_pde, q_pde) = solver.forward(&m);
    let mut d_fft = vec![0.0; twin.n_data()];
    twin.phase1.fast_f.matvec(&m, &mut d_fft);
    assert!(
        rel_l2(&d_fft, &d_pde) < 1e-7,
        "F mismatch {}",
        rel_l2(&d_fft, &d_pde)
    );
    let mut q_fft = vec![0.0; twin.phase1.fast_fq.nrows()];
    twin.phase1.fast_fq.matvec(&m, &mut q_fft);
    assert!(
        rel_l2(&q_fft, &q_pde) < 1e-7,
        "Fq mismatch {}",
        rel_l2(&q_fft, &q_pde)
    );
}

#[test]
fn posterior_samples_consistent_with_qoi_covariance() {
    use cascadia_dt::twin::posterior::posterior_sample;
    use tsunami_linalg::random::seeded_rng;
    let (config, event, twin) = setup();
    let stp = SpaceTimePrior::new(config.build_prior(), twin.solver.grid.nt_obs);
    let inf = twin.infer(&event.d_obs);
    let mut rng = seeded_rng(17);
    let n_samp = 200;
    let nq = twin.phase1.fast_fq.nrows();
    let mut mean = vec![0.0; nq];
    let mut m2 = vec![0.0; nq];
    for _ in 0..n_samp {
        let s = posterior_sample(&twin.phase1, &twin.phase2, &stp, &inf.m_map, &mut rng);
        let mut qs = vec![0.0; nq];
        twin.phase1.fast_fq.matvec(&s, &mut qs);
        for ((mu, sq), &q) in mean.iter_mut().zip(m2.iter_mut()).zip(&qs) {
            *mu += q;
            *sq += q * q;
        }
    }
    let mut checked = 0;
    for i in 0..nq {
        let mu = mean[i] / n_samp as f64;
        let var = m2[i] / n_samp as f64 - mu * mu;
        let exact = twin.phase3.gamma_post_q[(i, i)];
        if exact < 1e-10 {
            continue;
        }
        // MC error ~ sqrt(2/n) ≈ 10%; allow 4 sigma.
        assert!(
            (var - exact).abs() < 0.5 * exact,
            "entry {i}: sample var {var} vs exact {exact}"
        );
        checked += 1;
    }
    assert!(
        checked > 5,
        "too few informative entries checked: {checked}"
    );
}
