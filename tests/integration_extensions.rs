//! Integration tests for the operational extensions: streaming early
//! warning, optimal sensor placement, DAS arrays, the generic LTI engine,
//! and the elastic shake-map twin — plus failure-injection checks that the
//! machinery detects or degrades gracefully on bad inputs.

use cascadia_dt::elastic::{
    DippingFault, ElasticGrid, ElasticSolver, LayeredMedium, ShakeTwin, SlipScenario,
};
use cascadia_dt::linalg::random::seeded_rng;
use cascadia_dt::linalg::Cholesky;
use cascadia_dt::prelude::*;
use cascadia_dt::solver::SensorArray;
use cascadia_dt::twin::metrics::{correlation, rel_l2};
use cascadia_dt::twin::{build_maps, greedy_design, infer_window, Criterion, OedCandidates};

fn acoustic_twin() -> (DigitalTwin, cascadia_dt::twin::SyntheticEvent) {
    let cfg = TwinConfig::tiny();
    let solver = cfg.build_solver();
    let rupture = SyntheticEvent::default_rupture(&cfg);
    let ev = SyntheticEvent::generate(&cfg, &solver, &rupture, 321);
    let twin = DigitalTwin::offline(cfg, ev.noise_std);
    (twin, ev)
}

#[test]
fn streaming_and_batch_agree_and_skill_grows() {
    let (twin, ev) = acoustic_twin();
    let nd = twin.solver.sensors.len();
    let nt = twin.solver.grid.nt_obs;
    let wf = WindowedForecaster::build(
        &twin.phase1,
        &twin.phase2,
        &twin.phase3,
        &[nt / 4, nt / 2, nt],
    );
    // Full window reproduces the batch forecast bit-for-bit (same algebra).
    let fc_batch = twin.forecast(&ev.d_obs);
    let last = wf.windows.len() - 1;
    let fc_stream = wf.forecast(last, &ev.d_obs);
    for (a, b) in fc_stream.q_map.iter().zip(&fc_batch.q_map) {
        assert!((a - b).abs() < 1e-9 * b.abs().max(1e-12));
    }
    // Skill improves monotonically across this window ladder for the
    // synthetic event (guaranteed only statistically, but robust here).
    let errs: Vec<f64> = (0..wf.windows.len())
        .map(|i| {
            let w = wf.windows[i];
            rel_l2(&wf.forecast(i, &ev.d_obs[..w * nd]).q_map, &ev.q_true)
        })
        .collect();
    assert!(
        errs[0] >= errs[errs.len() - 1],
        "more data must not hurt overall: {errs:?}"
    );
}

#[test]
fn windowed_inference_never_sees_the_future() {
    // Feeding a window of length k must give the same answer whether the
    // future entries exist (and are garbage) or not — they are unread.
    let (twin, ev) = acoustic_twin();
    let nd = twin.solver.sensors.len();
    let k = twin.solver.grid.nt_obs / 2;
    let inf_a = infer_window(&twin.phase1, &twin.phase2, &ev.d_obs[..k * nd], k);
    let mut poisoned = ev.d_obs.clone();
    for v in poisoned[k * nd..].iter_mut() {
        *v = 1e9;
    }
    let inf_b = infer_window(&twin.phase1, &twin.phase2, &poisoned[..k * nd], k);
    assert_eq!(inf_a.m_map, inf_b.m_map);
}

#[test]
fn greedy_first_pick_is_the_exhaustive_optimum() {
    let (twin, _) = acoustic_twin();
    let cand = OedCandidates::build(&twin.phase1, &twin.phase2, &twin.phase3);
    let design = greedy_design(&cand, 1, Criterion::AOptimal);
    let best_exhaustive = (0..cand.n_cand)
        .map(|r| (cand.qoi_trace(&[r]), r))
        .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap())
        .unwrap();
    assert_eq!(design.selected[0], best_exhaustive.1);
    assert!((design.objective_path[0] - best_exhaustive.0).abs() < 1e-9);
}

#[test]
fn sensor_dropout_degrades_gracefully() {
    // Removing a sensor (proper Bayesian treatment: smaller array, not
    // zeroed data) must increase forecast uncertainty but keep the
    // machinery exact — the OED trace quantifies the loss.
    let (twin, _) = acoustic_twin();
    let cand = OedCandidates::build(&twin.phase1, &twin.phase2, &twin.phase3);
    let all: Vec<usize> = (0..cand.n_cand).collect();
    let tr_full = cand.qoi_trace(&all);
    for drop in 0..cand.n_cand {
        let reduced: Vec<usize> = all.iter().copied().filter(|&r| r != drop).collect();
        let tr = cand.qoi_trace(&reduced);
        assert!(
            tr >= tr_full - 1e-9 * tr_full.abs(),
            "dropping sensor {drop} cannot reduce uncertainty: {tr} vs {tr_full}"
        );
        assert!(tr.is_finite());
    }
}

#[test]
fn uniform_channel_rescaling_with_matched_noise_is_invariant() {
    // Whitening invariance: scaling every channel by c and the noise std
    // by c leaves the posterior mean unchanged (rows of F and d scale
    // together). This is the identity that makes channel whitening exact
    // rather than a heuristic.
    let cfg = TwinConfig::tiny();
    let solver_a = cfg.build_solver();
    let rupture = SyntheticEvent::default_rupture(&cfg);
    let ev = SyntheticEvent::generate(&cfg, &solver_a, &rupture, 555);

    let twin_a = DigitalTwin::offline(cfg.clone(), ev.noise_std);
    let inf_a = twin_a.infer(&ev.d_obs);

    let c = 7.5;
    let mut solver_b = cfg.build_solver();
    let factors = vec![c; solver_b.sensors.len()];
    solver_b.sensors.rescale_channels(&factors);
    let timers = TimerRegistry::new();
    let p1 = cascadia_dt::twin::Phase1::build(&solver_b, &timers);
    let p2 = cascadia_dt::twin::Phase2::build(&p1, &cfg.build_prior(), c * ev.noise_std, &timers);
    let d_scaled: Vec<f64> = ev.d_obs.iter().map(|&v| c * v).collect();
    let inf_b = cascadia_dt::twin::phase4::infer(&p1, &p2, &d_scaled);
    let err = rel_l2(&inf_b.m_map, &inf_a.m_map);
    assert!(err < 1e-8, "whitening invariance broken: {err}");
}

#[test]
fn das_fiber_twin_is_exact_through_the_generic_builder() {
    // The generic LTI builder on a DAS-equipped solver must reproduce
    // forward PDE solves through the FFT path — observation operators are
    // opaque to the machinery.
    let cfg = TwinConfig::tiny();
    let mut solver = cfg.build_solver();
    let pts: Vec<(f64, f64)> = vec![
        (0.15 * cfg.lx, 0.3 * cfg.ly),
        (0.3 * cfg.lx, 0.5 * cfg.ly),
        (0.45 * cfg.lx, 0.35 * cfg.ly),
        (0.55 * cfg.lx, 0.6 * cfg.ly),
    ];
    solver.sensors = SensorArray::das_fiber(&solver.op, &pts, 0.05);
    let (f, _fq) = build_maps(&solver);
    let fast = cascadia_dt::fft::FftBlockToeplitz::from_blocks(&f);
    let mut s = 5u64;
    let m: Vec<f64> = (0..solver.n_params())
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect();
    let (d_pde, _) = solver.forward(&m);
    let mut d_fft = vec![0.0; solver.n_data()];
    fast.matvec(&m, &mut d_fft);
    let scale = d_pde.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    for (a, b) in d_pde.iter().zip(&d_fft) {
        assert!((a - b).abs() < 1e-8 * scale, "{a} vs {b}");
    }
}

fn elastic_twin(nt: usize) -> ShakeTwin {
    let grid = ElasticGrid::new(40, 20, 1000.0, 1000.0, 5, 0.94);
    let medium = LayeredMedium::cascadia_margin(20_000.0);
    let fault = DippingFault::megathrust(40_000.0, 20_000.0, 6);
    let solver = ElasticSolver::new(
        grid,
        &medium,
        fault,
        &[6e3, 10e3, 14e3, 18e3, 22e3, 26e3, 30e3, 34e3],
        &[26e3, 34e3],
        0.5,
        nt,
        0.5,
    );
    ShakeTwin::offline(solver, 4_000.0, 1.0, 1e-3)
}

#[test]
fn elastic_and_acoustic_twins_share_the_same_engine_semantics() {
    // The Kalman-gain consistency (q_map = Fq m_map) must hold through
    // both physics backends; it is a property of the shared Phases 2–4.
    let twin = elastic_twin(10);
    let d: Vec<f64> = (0..twin.engine.n_data())
        .map(|i| (i as f64 * 0.41).sin())
        .collect();
    let inf = twin.invert_slip(&d);
    let fc = twin.forecast_ground_motion(&d);
    let mut q = vec![0.0; twin.engine.n_qoi()];
    twin.engine.phase1.fast_fq.matvec(&inf.m_map, &mut q);
    let scale = q.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    for (a, b) in fc.q_map.iter().zip(&q) {
        assert!((a - b).abs() < 1e-7 * scale);
    }
}

#[test]
fn elastic_end_to_end_event_recovery() {
    let twin0 = elastic_twin(24);
    let scenario = SlipScenario::partial_rupture(twin0.solver.n_m());
    let ev = twin0.synthesize(&scenario, 0.01, 808);
    let twin = ShakeTwin::offline(elastic_twin(24).solver, 4_000.0, 1.0, ev.noise_std);
    let inf = twin.invert_slip(&ev.d_obs);
    let corr = correlation(&twin.final_slip(&inf.m_map), &twin.final_slip(&ev.m_true));
    assert!(corr > 0.9, "cross-crate elastic recovery: {corr}");

    let mut rng = seeded_rng(9);
    let sm = twin.shake_map(&ev.d_obs, 100, &mut rng);
    for s in 0..twin.solver.qoi_sites.len() {
        assert!(sm.pgv_p05[s] <= sm.pgv_p95[s]);
        assert!(sm.pgv_mean[s] >= 0.0 && sm.pgv_mean[s].is_finite());
    }
}

#[test]
fn streaming_windows_work_on_the_elastic_engine() {
    // WindowedForecaster only sees Phase 1-3 products, so the elastic
    // shake-map twin streams exactly like the tsunami twin.
    let twin = elastic_twin(12);
    let e = &twin.engine;
    let nt = twin.solver.nt_obs;
    let nd = twin.solver.stations.len();
    let wf = WindowedForecaster::build(&e.phase1, &e.phase2, &e.phase3, &[2, nt]);
    let d: Vec<f64> = (0..e.n_data()).map(|i| (i as f64 * 0.17).sin()).collect();
    let fc_full = e.predict(&d);
    let fc_stream = wf.forecast(1, &d);
    for (a, b) in fc_stream.q_map.iter().zip(&fc_full.q_map) {
        assert!((a - b).abs() < 1e-9 * b.abs().max(1e-12));
    }
    // Narrow-window ground-motion uncertainty dominates the full window.
    let fc_narrow = wf.forecast(0, &d[..2 * nd]);
    for (wide, narrow) in fc_stream.q_std.iter().zip(&fc_narrow.q_std) {
        assert!(*wide <= narrow + 1e-9 * narrow.abs().max(1e-12));
    }
}

#[test]
fn cholesky_rejects_nan_contamination() {
    // Failure injection: a NaN anywhere in the (lower triangle of the)
    // matrix must surface as a factorization error, not silent garbage.
    let mut a = cascadia_dt::linalg::DMatrix::identity(6);
    a[(3, 2)] = f64::NAN;
    a[(2, 3)] = f64::NAN;
    assert!(
        Cholesky::factor(&a).is_err(),
        "NaN must fail the factorization"
    );
}

#[test]
fn engine_rejects_wrong_data_dimension() {
    let (twin, _) = acoustic_twin();
    let bad = vec![0.0; twin.n_data() + 1];
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        twin.infer(&bad);
    }));
    assert!(
        result.is_err(),
        "dimension mismatch must panic, not mis-solve"
    );
}

#[test]
fn windowed_forecaster_rejects_zero_window() {
    let (twin, _) = acoustic_twin();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        WindowedForecaster::build(&twin.phase1, &twin.phase2, &twin.phase3, &[0]);
    }));
    assert!(result.is_err(), "zero-length window must be rejected");
}
