//! Property-based tests on the core numerical machinery, via the public
//! API: FFT/Toeplitz equivalences, Cholesky solves, prior identities,
//! leading-block solves, shake-map statistics, and the elastic adjoint.

use cascadia_dt::elastic::{pgv, DippingFault, ElasticGrid, ElasticSolver, LayeredMedium};
use cascadia_dt::fft::{
    dct2_orthonormal, dct3_orthonormal, BlockToeplitz, Bluestein, FftBlockToeplitz,
};
use cascadia_dt::linalg::{Cholesky, DMatrix, C64};
use cascadia_dt::prior::MaternPrior;
use proptest::prelude::*;

fn toeplitz_strategy() -> impl Strategy<Value = (BlockToeplitz, Vec<f64>, Vec<f64>)> {
    (1usize..12, 1usize..5, 1usize..7)
        .prop_flat_map(|(nt, od, id)| {
            let n_in = nt * id;
            let n_out = nt * od;
            (
                proptest::collection::vec(-1.0f64..1.0, nt * od * id),
                proptest::collection::vec(-1.0f64..1.0, n_in),
                proptest::collection::vec(-1.0f64..1.0, n_out),
                Just((nt, od, id)),
            )
        })
        .prop_map(|(vals, x, w, (nt, od, id))| {
            let blocks = (0..nt)
                .map(|k| DMatrix::from_fn(od, id, |r, c| vals[(k * od + r) * id + c]))
                .collect();
            (BlockToeplitz::new(blocks, od, id), x, w)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_toeplitz_matvec_equals_naive((t, x, _w) in toeplitz_strategy()) {
        let fast = FftBlockToeplitz::from_blocks(&t);
        let mut y1 = vec![0.0; t.nrows()];
        t.matvec_naive(&x, &mut y1);
        let mut y2 = vec![0.0; t.nrows()];
        fast.matvec(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_toeplitz_transpose_equals_naive((t, _x, w) in toeplitz_strategy()) {
        let fast = FftBlockToeplitz::from_blocks(&t);
        let mut z1 = vec![0.0; t.ncols()];
        t.matvec_transpose_naive(&w, &mut z1);
        let mut z2 = vec![0.0; t.ncols()];
        fast.matvec_transpose(&w, &mut z2);
        for (a, b) in z1.iter().zip(&z2) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn toeplitz_adjoint_identity((t, x, w) in toeplitz_strategy()) {
        let fast = FftBlockToeplitz::from_blocks(&t);
        let mut fx = vec![0.0; t.nrows()];
        fast.matvec(&x, &mut fx);
        let mut ftw = vec![0.0; t.ncols()];
        fast.matvec_transpose(&w, &mut ftw);
        let lhs: f64 = fx.iter().zip(&w).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&ftw).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-8 * lhs.abs().max(1.0));
    }

    #[test]
    fn bluestein_roundtrip(re in proptest::collection::vec(-10.0f64..10.0, 1..80)) {
        let x: Vec<C64> = re.iter().map(|&r| C64::new(r, -0.5 * r)).collect();
        let plan = Bluestein::new(x.len());
        let back = plan.inverse(&plan.forward(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn dct_roundtrip_and_parseval(x in proptest::collection::vec(-5.0f64..5.0, 1..64)) {
        let spec = dct2_orthonormal(&x);
        let back = dct3_orthonormal(&spec);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let es: f64 = spec.iter().map(|v| v * v).sum();
        prop_assert!((ex - es).abs() < 1e-8 * ex.max(1.0));
    }

    #[test]
    fn cholesky_solves_random_spd(seed in 0u64..5000, n in 2usize..40) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let m = DMatrix::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.shift_diag(n as f64 * 0.5 + 1.0);
        a.symmetrize();
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let x = ch.solve(&b);
        let mut r = vec![0.0; n];
        a.matvec(&x, &mut r);
        for (ri, bi) in r.iter().zip(&b) {
            prop_assert!((ri - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn prior_cov_is_spd_quadratic_form(
        seed in 0u64..1000,
        gx in 3usize..10,
        gy in 3usize..10,
    ) {
        let prior = MaternPrior::with_hyperparameters(gx, gy, 50e3, 50e3, 12e3, 1.0);
        let mut s = seed | 1;
        let x: Vec<f64> = (0..prior.n()).map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        }).collect();
        let mut gx_out = vec![0.0; prior.n()];
        prior.apply_cov(&x, &mut gx_out);
        let quad: f64 = x.iter().zip(&gx_out).map(|(a, b)| a * b).sum();
        // Γ is SPD: xᵀΓx > 0 for x ≠ 0.
        let norm: f64 = x.iter().map(|v| v * v).sum();
        prop_assert!(quad > 0.0 || norm < 1e-20, "quadratic form {quad}");
    }

    #[test]
    fn toeplitz_storage_linear(nt in 1usize..30, od in 1usize..6, id in 1usize..6) {
        let t = BlockToeplitz::zeros(nt, od, id);
        prop_assert_eq!(t.storage_bytes(), nt * od * id * 8);
        // Dense storage would be nt² blocks; compression factor is nt… but
        // lower-triangular dense is nt(nt+1)/2, so the ratio is (nt+1)/2.
        let dense_blocks = nt * (nt + 1) / 2;
        prop_assert!(dense_blocks >= nt);
    }

    #[test]
    fn cholesky_leading_block_solves_any_prefix(seed in 0u64..3000, n in 2usize..30, frac in 0.1f64..1.0) {
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let m = DMatrix::from_fn(n, n, |_, _| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        });
        let mut a = m.matmul_nt(&m);
        a.shift_diag(n as f64 * 0.5 + 1.0);
        a.symmetrize();
        let ch = Cholesky::factor(&a).unwrap();
        let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let b: Vec<f64> = (0..k).map(|i| (i as f64 * 0.83).cos()).collect();
        let mut x = b.clone();
        ch.solve_leading_in_place(k, &mut x);
        // Residual against the leading block of A.
        for i in 0..k {
            let mut r = 0.0;
            for j in 0..k {
                r += a[(i, j)] * x[j];
            }
            prop_assert!((r - b[i]).abs() < 1e-7, "row {i}: {r} vs {}", b[i]);
        }
    }

    #[test]
    fn pgv_dominates_every_sample_and_scales(
        q in proptest::collection::vec(-4.0f64..4.0, 2..60),
        c in 0.1f64..5.0,
        nq in 1usize..4,
    ) {
        let nt = q.len() / nq;
        prop_assume!(nt >= 1);
        let q = &q[..nq * nt];
        let p = pgv(q, nq, nt);
        // PGV bounds every sample of its site.
        for i in 0..nt {
            for s in 0..nq {
                prop_assert!(q[i * nq + s].abs() <= p[s] + 1e-15);
            }
        }
        // Positive homogeneity: pgv(c·q) = c·pgv(q).
        let qc: Vec<f64> = q.iter().map(|&v| c * v).collect();
        let pc = pgv(&qc, nq, nt);
        for (a, b) in pc.iter().zip(&p) {
            prop_assert!((a - c * b).abs() < 1e-12 * (c * b).abs().max(1e-12));
        }
    }
}

proptest! {
    // The elastic solves are heavier; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn elastic_adjoint_identity_over_random_configs(
        seed in 0u64..1000,
        np in 2usize..6,
        nt in 2usize..6,
        dip_deg in 8.0f64..30.0,
    ) {
        let grid = ElasticGrid::new(28, 14, 1000.0, 1000.0, 4, 0.94);
        let medium = LayeredMedium::cascadia_margin(14_000.0);
        let fault = DippingFault {
            x_top: 5_000.0,
            z_top: 2_000.0,
            dip: dip_deg.to_radians(),
            length: 14_000.0,
            n_patches: np,
        };
        let sol = ElasticSolver::new(
            grid, &medium, fault, &[8_000.0, 18_000.0], &[22_000.0], 0.5, nt, 0.5,
        );
        let mut s = seed | 1;
        let mut rnd = |n: usize| -> Vec<f64> {
            (0..n).map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }).collect()
        };
        let m = rnd(sol.n_params());
        let w = rnd(sol.n_data());
        let (d, _) = sol.forward(&m);
        let z = sol.adjoint_data(&w);
        let lhs: f64 = d.iter().zip(&w).map(|(a, b)| a * b).sum();
        let rhs: f64 = m.iter().zip(&z).map(|(a, b)| a * b).sum();
        prop_assert!(
            (lhs - rhs).abs() < 1e-9 * lhs.abs().max(rhs.abs()).max(1e-12),
            "elastic adjoint identity: {lhs} vs {rhs}"
        );
    }
}
