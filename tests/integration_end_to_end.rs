//! End-to-end integration: rupture → PDE data → offline twin → online
//! inversion → forecast, exercised through the public facade only.

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, correlation, displacement_field, rel_l2};

fn run_event(seed: u64) -> (TwinConfig, SyntheticEvent, DigitalTwin) {
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, seed);
    let twin = DigitalTwin::offline(config.clone(), event.noise_std);
    (config, event, twin)
}

#[test]
fn forecast_beats_climatology() {
    // The forecast must explain most of the true QoI variance; the "no
    // data" forecast (zero) is the baseline it must beat decisively.
    let (_cfg, event, twin) = run_event(101);
    let fc = twin.forecast(&event.d_obs);
    let err = rel_l2(&fc.q_map, &event.q_true);
    assert!(err < 0.5, "forecast error {err}");
    let zero = vec![0.0; event.q_true.len()];
    let err_zero = rel_l2(&zero, &event.q_true);
    assert!(
        err < 0.6 * err_zero,
        "forecast barely beats zero: {err} vs {err_zero}"
    );
}

#[test]
fn displacement_field_recovered() {
    let (_cfg, event, twin) = run_event(202);
    let inf = twin.infer(&event.d_obs);
    let nm = twin.solver.n_m();
    let nt = twin.solver.grid.nt_obs;
    let dt = twin.solver.grid.dt_obs();
    let b_true = displacement_field(&event.m_true, nm, nt, dt);
    let b_map = displacement_field(&inf.m_map, nm, nt, dt);
    let corr = correlation(&b_map, &b_true);
    assert!(corr > 0.6, "displacement correlation {corr}");
}

#[test]
fn credible_intervals_are_calibrated_across_noise_draws() {
    // Empirical CI coverage over repeated noise realizations should be
    // near the nominal 95% (loose band: finite sample + scale mismatch).
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let base = SyntheticEvent::generate(&config, &solver, &rupture, 1);
    let twin = DigitalTwin::offline(config.clone(), base.noise_std);
    let mut coverages = Vec::new();
    for seed in 0..8u64 {
        let ev = SyntheticEvent::generate(&config, &solver, &rupture, 1000 + seed);
        let fc = twin.forecast(&ev.d_obs);
        coverages.push(ci95_coverage(&fc.q_map, &fc.q_std, &ev.q_true));
    }
    let mean = coverages.iter().sum::<f64>() / coverages.len() as f64;
    assert!(
        mean > 0.75 && mean <= 1.0,
        "mean CI coverage {mean} out of calibration band; draws {coverages:?}"
    );
}

#[test]
fn inference_is_deterministic() {
    let (_cfg, event, twin) = run_event(303);
    let a = twin.infer(&event.d_obs);
    let b = twin.infer(&event.d_obs);
    assert_eq!(a.m_map, b.m_map, "online inference must be deterministic");
}

#[test]
fn online_is_far_faster_than_offline() {
    let (_cfg, event, twin) = run_event(404);
    let offline = twin.timers.total_seconds();
    let mut online = f64::INFINITY;
    for _ in 0..3 {
        online = online.min(twin.infer(&event.d_obs).seconds);
    }
    assert!(
        offline > 50.0 * online,
        "offline {offline} s vs online {online} s — decomposition pointless"
    );
}

#[test]
fn kernel_variant_does_not_change_answers() {
    // The twin built with MatrixFree kernels must produce the same maps as
    // with FusedPa (same operator, different implementation).
    let mut cfg_a = TwinConfig::tiny();
    cfg_a.kernel = KernelVariant::FusedPa;
    let mut cfg_b = TwinConfig::tiny();
    cfg_b.kernel = KernelVariant::MatrixFree;
    let solver = cfg_a.build_solver();
    let rupture = SyntheticEvent::default_rupture(&cfg_a);
    let ev = SyntheticEvent::generate(&cfg_a, &solver, &rupture, 9);
    let twin_a = DigitalTwin::offline(cfg_a, ev.noise_std);
    let twin_b = DigitalTwin::offline(cfg_b, ev.noise_std);
    let ma = twin_a.infer(&ev.d_obs).m_map;
    let mb = twin_b.infer(&ev.d_obs).m_map;
    let err = rel_l2(&ma, &mb);
    assert!(err < 1e-8, "kernel variants disagree: {err}");
}
