//! Physics validation of the acoustic–gravity solver against analytic
//! dispersion relations — the checks that the substrate actually solves
//! eq. (1) of the paper, not merely *some* stable PDE.

use std::sync::Arc;
use tsunami_fem::kernels::{KernelContext, KernelVariant};
use tsunami_fem::{gauss_lobatto, PointEvaluator};
use tsunami_mesh::{FlatBathymetry, HexMesh};
use tsunami_solver::rk4::{rk4_step, Rk4Workspace};
use tsunami_solver::{PhysicalParams, WaveOperator};

/// Measure the oscillation period of a time series from its zero
/// crossings (first and third crossing bracket one half-period each).
fn period_from_crossings(times: &[f64], values: &[f64]) -> Option<f64> {
    let mut crossings = Vec::new();
    for i in 1..values.len() {
        if values[i - 1].signum() != values[i].signum() && values[i - 1] != 0.0 {
            // Linear interpolation of the crossing time.
            let frac = values[i - 1] / (values[i - 1] - values[i]);
            crossings.push(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
        if crossings.len() == 3 {
            break;
        }
    }
    (crossings.len() >= 3).then(|| crossings[2] - crossings[0])
}

#[test]
fn surface_gravity_wave_dispersion() {
    // Standing gravity wave in a closed basin: η(x) = A cos(kx), k = π/Lx,
    // oscillates at ω² = g k tanh(kH) in the incompressible limit. With
    // c/√(gH) ≈ 8.6 the compressibility correction is ≲ 2%.
    let (lx, ly, h) = (8000.0, 2000.0, 500.0);
    let mesh = Arc::new(HexMesh::terrain_following(
        8,
        2,
        2,
        lx,
        ly,
        &FlatBathymetry { depth: h },
    ));
    let ctx = Arc::new(KernelContext::new(mesh, 3));
    let params = PhysicalParams::slow_ocean(600.0);
    let mut op = WaveOperator::new(ctx.clone(), KernelVariant::FusedPa, params);
    op.absorbing_coeff = 0.0; // rigid walls: cos(kx) satisfies u·n = 0

    let k = std::f64::consts::PI / lx;
    let omega = params.gravity_wave_omega(k, h);
    let period_theory = std::f64::consts::TAU / omega;

    // Initial condition: p = ρg η₀ cosh(k(z+H))/cosh(kH) (≈ uniform for
    // kH = 0.196), u = 0.
    let (gll, _) = gauss_lobatto(4);
    let coords = ctx.h1.node_coords(&ctx.mesh, &gll);
    let n_u = op.n_u();
    let mut x = vec![0.0; op.n_state()];
    let rg = params.rho * params.gravity;
    for (v, c) in x[n_u..].iter_mut().zip(&coords) {
        let eta0 = 0.5 * (k * c[0]).cos();
        *v = rg * eta0 * ((k * (c[2] + h)).cosh() / (k * h).cosh());
    }

    // Probe η at the left wall (antinode).
    let probe = PointEvaluator::new(&ctx.mesh, &ctx.h1, 50.0, 1000.0, 0.0).unwrap();
    let dt = params.cfl_dt(h / 2.0, 3, 0.4);
    let mut ws = Rk4Workspace::new(op.n_state());
    let steps = (1.3 * period_theory / dt) as usize;
    let mut times = Vec::with_capacity(steps);
    let mut etas = Vec::with_capacity(steps);
    for s in 0..steps {
        rk4_step(&op, &mut x, None, dt, &mut ws);
        times.push((s + 1) as f64 * dt);
        etas.push(probe.eval(&x[n_u..]));
    }
    let period = period_from_crossings(&times, &etas)
        .expect("no full oscillation observed — wave did not propagate");
    let rel = (period - period_theory).abs() / period_theory;
    assert!(
        rel < 0.05,
        "gravity-wave period {period:.1}s vs theory {period_theory:.1}s ({:.1}% off)",
        rel * 100.0
    );
}

#[test]
fn acoustic_organ_pipe_mode() {
    // Vertical acoustic resonance of the water column: pressure-release
    // surface + rigid bottom → quarter-wave mode with period 4H/c. Gravity
    // shifts it negligibly at these parameters.
    let (lx, ly, h) = (2000.0, 2000.0, 500.0);
    let mesh = Arc::new(HexMesh::terrain_following(
        2,
        2,
        4,
        lx,
        ly,
        &FlatBathymetry { depth: h },
    ));
    let ctx = Arc::new(KernelContext::new(mesh, 4));
    let params = PhysicalParams::slow_ocean(600.0);
    let mut op = WaveOperator::new(ctx.clone(), KernelVariant::FusedPa, params);
    op.absorbing_coeff = 0.0;

    let (gll, _) = gauss_lobatto(5);
    let coords = ctx.h1.node_coords(&ctx.mesh, &gll);
    let n_u = op.n_u();
    let mut x = vec![0.0; op.n_state()];
    let kz = std::f64::consts::PI / (2.0 * h);
    for (v, c) in x[n_u..].iter_mut().zip(&coords) {
        *v = 1000.0 * (kz * (c[2] + h)).cos(); // p=0 at z=0, dp/dz=0 at bottom
    }
    let probe = PointEvaluator::new(&ctx.mesh, &ctx.h1, 1000.0, 1000.0, -h * 0.98).unwrap();
    let period_theory = 4.0 * h / params.sound_speed();
    let dt = params.cfl_dt(h / 4.0, 4, 0.3);
    let mut ws = Rk4Workspace::new(op.n_state());
    let steps = (1.4 * period_theory / dt) as usize;
    let mut times = Vec::with_capacity(steps);
    let mut ps = Vec::with_capacity(steps);
    for s in 0..steps {
        rk4_step(&op, &mut x, None, dt, &mut ws);
        times.push((s + 1) as f64 * dt);
        ps.push(probe.eval(&x[n_u..]));
    }
    let period = period_from_crossings(&times, &ps).expect("no acoustic oscillation");
    let rel = (period - period_theory).abs() / period_theory;
    assert!(
        rel < 0.05,
        "acoustic period {period:.3}s vs theory {period_theory:.3}s ({:.1}% off)",
        rel * 100.0
    );
}

#[test]
fn acoustic_travel_time_to_sensor() {
    // A seafloor impulse must not register at a distant sensor before the
    // acoustic travel time — finite propagation speed (causality in space).
    let (lx, ly, h) = (12_000.0, 3000.0, 500.0);
    let mesh = Arc::new(HexMesh::terrain_following(
        12,
        3,
        1,
        lx,
        ly,
        &FlatBathymetry { depth: h },
    ));
    let ctx = Arc::new(KernelContext::new(mesh, 3));
    let params = PhysicalParams::slow_ocean(400.0);
    let op = WaveOperator::new(ctx.clone(), KernelVariant::FusedPa, params);
    // Well-resolved bottom source near x = 1.5 km (width ≫ element size,
    // smooth onset — abrupt unresolved sources excite dispersive numerical
    // precursors that travel faster than c, as in any spectral scheme).
    let mut m_shape = vec![0.0; op.bottom.len()];
    for (i, c) in op.bottom.coords.iter().enumerate() {
        let d2 = (c[0] - 1500.0).powi(2) + (c[1] - 1500.0).powi(2);
        m_shape[i] = (-d2 / (2500.0f64 * 2500.0)).exp();
    }
    let sensor_x = 10_500.0;
    let probe = PointEvaluator::new(&ctx.mesh, &ctx.h1, sensor_x, 1500.0, -h * 0.97).unwrap();
    let distance = sensor_x - 1500.0;
    let t_arrive = distance / params.sound_speed();
    let ramp = 5.0; // seconds of smooth turn-on
    let dt = params.cfl_dt(h, 3, 0.4);
    let mut ws = Rk4Workspace::new(op.n_state());
    let n_u = op.n_u();
    let mut x = vec![0.0; op.n_state()];
    let mut m = vec![0.0; op.bottom.len()];
    let mut peak_before = 0.0f64;
    let mut peak_after = 0.0f64;
    let steps = (1.6 * t_arrive / dt) as usize;
    for s in 0..steps {
        let t = s as f64 * dt;
        let scale = if t < ramp {
            (std::f64::consts::FRAC_PI_2 * t / ramp).sin().powi(2)
        } else {
            1.0
        };
        for (mv, &sh) in m.iter_mut().zip(&m_shape) {
            *mv = scale * sh;
        }
        rk4_step(&op, &mut x, Some(&m), dt, &mut ws);
        let t1 = (s + 1) as f64 * dt;
        let p = probe.eval(&x[n_u..]).abs();
        if t1 < 0.5 * t_arrive {
            peak_before = peak_before.max(p);
        } else {
            peak_after = peak_after.max(p);
        }
    }
    assert!(
        peak_after > 10.0 * peak_before.max(1e-12),
        "no clear arrival: before {peak_before:.3e}, after {peak_after:.3e} (t_arrive {t_arrive:.1}s)"
    );
}
