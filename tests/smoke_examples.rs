//! Smoke test: the `examples/quickstart.rs` flow must run to completion on
//! `TwinConfig::tiny()` and produce a finite, calibrated forecast.
//!
//! This mirrors the example's API sequence step for step (synthesize →
//! offline phases 1-3 → online infer/forecast) so a regression in any layer
//! the example touches fails here, in `cargo test`, without needing to
//! spawn the example binary. CI additionally runs the binary itself
//! (`cargo run --release --example quickstart`).

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, rel_l2};

#[test]
fn quickstart_example_flow_runs_to_completion_on_tiny_config() {
    let config = TwinConfig::tiny();

    // Synthesize the "truth" exactly as the example does (same seed).
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    assert!(!event.d_obs.is_empty(), "synthetic event produced no data");
    assert!(
        event.noise_std > 0.0 && event.noise_std.is_finite(),
        "noise std must be positive and finite, got {}",
        event.noise_std
    );
    drop(solver);

    // Offline phases 1-3, then the real-time online phase.
    let twin = DigitalTwin::offline(config, event.noise_std);
    let inference = twin.infer(&event.d_obs);
    let forecast = twin.forecast(&event.d_obs);

    // Shape invariants the example's output loop relies on.
    assert_eq!(inference.m_map.len(), twin.n_params());
    assert_eq!(forecast.q_map.len(), forecast.q_std.len());
    assert_eq!(forecast.q_map.len(), event.q_true.len());
    let nq = twin.solver.qoi.len();
    let nt = twin.solver.grid.nt_obs;
    assert_eq!(forecast.q_map.len(), nq * nt);

    // Every number the example prints must be finite and sane.
    assert!(inference.m_map.iter().all(|v| v.is_finite()));
    assert!(forecast.q_map.iter().all(|v| v.is_finite()));
    assert!(
        forecast.q_std.iter().all(|v| v.is_finite() && *v >= 0.0),
        "forecast std devs must be finite and nonnegative"
    );
    for idx in 0..forecast.q_map.len() {
        let (lo, hi) = forecast.ci95(idx);
        assert!(lo <= hi, "inverted CI at index {idx}: [{lo}, {hi}]");
    }

    // Forecast quality on the tiny config: the inversion is exact in the
    // noise-free limit, so with 1% noise the wave-height field must be
    // recovered well and the 95% interval must cover a healthy fraction of
    // the truth. Thresholds are loose on purpose — this is a smoke test,
    // not an accuracy benchmark.
    let err = rel_l2(&forecast.q_map, &event.q_true);
    assert!(
        err.is_finite() && err < 0.5,
        "quickstart forecast error unexpectedly large: rel L2 = {err}"
    );
    let coverage = ci95_coverage(&forecast.q_map, &forecast.q_std, &event.q_true);
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be a fraction, got {coverage}"
    );
}
