//! Smoke tests: the `examples/quickstart.rs` and
//! `examples/streaming_warning.rs` flows must run to completion on
//! `TwinConfig::tiny()` and produce finite, calibrated results.
//!
//! These mirror the examples' API sequences step for step (synthesize →
//! offline phases 1-3 → online work) so a regression in any layer the
//! examples touch fails here, in `cargo test`, without needing to spawn
//! the example binaries. CI additionally runs the quickstart binary
//! itself (`cargo run --release --example quickstart`).

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, rel_l2};

#[test]
fn quickstart_example_flow_runs_to_completion_on_tiny_config() {
    let config = TwinConfig::tiny();

    // Synthesize the "truth" exactly as the example does (same seed).
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    assert!(!event.d_obs.is_empty(), "synthetic event produced no data");
    assert!(
        event.noise_std > 0.0 && event.noise_std.is_finite(),
        "noise std must be positive and finite, got {}",
        event.noise_std
    );
    drop(solver);

    // Offline phases 1-3, then the real-time online phase.
    let twin = DigitalTwin::offline(config, event.noise_std);
    let inference = twin.infer(&event.d_obs);
    let forecast = twin.forecast(&event.d_obs);

    // Shape invariants the example's output loop relies on.
    assert_eq!(inference.m_map.len(), twin.n_params());
    assert_eq!(forecast.q_map.len(), forecast.q_std.len());
    assert_eq!(forecast.q_map.len(), event.q_true.len());
    let nq = twin.solver.qoi.len();
    let nt = twin.solver.grid.nt_obs;
    assert_eq!(forecast.q_map.len(), nq * nt);

    // Every number the example prints must be finite and sane.
    assert!(inference.m_map.iter().all(|v| v.is_finite()));
    assert!(forecast.q_map.iter().all(|v| v.is_finite()));
    assert!(
        forecast.q_std.iter().all(|v| v.is_finite() && *v >= 0.0),
        "forecast std devs must be finite and nonnegative"
    );
    for idx in 0..forecast.q_map.len() {
        let (lo, hi) = forecast.ci95(idx);
        assert!(lo <= hi, "inverted CI at index {idx}: [{lo}, {hi}]");
    }

    // Forecast quality on the tiny config: the inversion is exact in the
    // noise-free limit, so with 1% noise the wave-height field must be
    // recovered well and the 95% interval must cover a healthy fraction of
    // the truth. Thresholds are loose on purpose — this is a smoke test,
    // not an accuracy benchmark.
    let err = rel_l2(&forecast.q_map, &event.q_true);
    assert!(
        err.is_finite() && err < 0.5,
        "quickstart forecast error unexpectedly large: rel L2 = {err}"
    );
    let coverage = ci95_coverage(&forecast.q_map, &forecast.q_std, &event.q_true);
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be a fraction, got {coverage}"
    );
}

#[test]
fn streaming_warning_example_flow_runs_to_completion_on_tiny_config() {
    streaming_warning_flow(TwinConfig::tiny());
}

/// The demo-scale variant of the streaming flow (`TwinConfig::demo()`),
/// behind the same env flag the example reads: the offline build takes
/// minutes on one core, so it only runs when `STREAMING_DEMO=1` is set
/// (CI and default `cargo test` skip it).
#[test]
fn streaming_warning_example_flow_demo_scale_behind_env_flag() {
    if std::env::var("STREAMING_DEMO").map(|v| v == "1") != Ok(true) {
        eprintln!("skipping demo-scale streaming smoke (set STREAMING_DEMO=1 to run)");
        return;
    }
    streaming_warning_flow(TwinConfig::demo());
}

fn streaming_warning_flow(config: TwinConfig) {
    // Bank + twin + window ladder, exactly as the example builds them
    // (same family seed; a smaller bank keeps the smoke test quick).
    let n_sessions = 4;
    let specs = ScenarioBank::family(&config, n_sessions, 7);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let ladder: Vec<usize> = [1, 2, 4, 8, nt]
        .iter()
        .cloned()
        .filter(|&w| w <= nt)
        .collect();
    let forecaster = twin.windowed(&ladder);

    let stream_cfg = StreamConfig {
        chunk: 4,
        warn_threshold: 1.0,
        infer: true,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(&twin, &forecaster, stream_cfg).with_bank(&bank);
    let ids: Vec<usize> = (0..bank.len()).map(|_| engine.open()).collect();

    // Interleaved replay: one observation step per session per round.
    // Track every externally observable warning-level change so the
    // engine's audit ring can be checked against it afterwards.
    let feeds: Vec<Vec<f64>> = (0..bank.len())
        .map(|j| bank.observations().col(j))
        .collect();
    let mut levels = vec![WarningLevel::AllClear; bank.len()];
    let mut observed: Vec<Vec<(WarningLevel, WarningLevel)>> = vec![Vec::new(); bank.len()];
    for t in 0..nt {
        for (d, &id) in feeds.iter().zip(&ids) {
            let accepted = engine.push(id, &d[t * nd..(t + 1) * nd]);
            assert_eq!(accepted, nd);
        }
        let tm = engine.tick();
        assert!(tm.seconds >= 0.0 && tm.seconds.is_finite());
        for (j, &id) in ids.iter().enumerate() {
            let level = engine.session(id).level;
            if level != levels[j] {
                observed[j].push((levels[j], level));
                levels[j] = level;
            }
        }
    }

    // Every session must have completed the ladder with a finite forecast
    // and a sane identification ranking.
    for (j, &id) in ids.iter().enumerate() {
        let s = engine.session(id);
        assert!(s.is_complete(), "session {j} did not finish the horizon");
        assert_eq!(s.window(), Some(forecaster.windows.len() - 1));
        let fc = s.forecast.as_ref().expect("session never assimilated");
        assert!(fc.q_map.iter().all(|v| v.is_finite()));
        assert!(fc.q_std.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(s.m_norm.expect("inference enabled").is_finite());
        let ranked = engine.ranked_matches(id);
        assert_eq!(ranked.len(), bank.len());
        let z: f64 = ranked.iter().map(|m| m.probability).sum();
        assert!((z - 1.0).abs() < 1e-9, "probabilities must normalize");
    }

    // The replayed streams are the bank's own scenarios: identification
    // must lock onto the right one for most sessions (loose on purpose —
    // smoke, not an accuracy benchmark).
    let correct = ids
        .iter()
        .enumerate()
        .filter(|(j, &id)| engine.ranked_matches(id)[0].scenario == *j)
        .count();
    assert!(
        correct * 2 >= bank.len(),
        "identification collapsed: {correct}/{}",
        bank.len()
    );

    // Engine accounting: every session crossed every rung once, in
    // bounded panels.
    let em = engine.metrics();
    assert_eq!(em.ticks, nt);
    assert_eq!(em.assimilations, bank.len() * forecaster.windows.len());
    assert_eq!(em.samples_ingested, bank.len() * twin.n_data());
    let bound = twin.n_data().max(twin.n_params()) * stream_cfg.chunk;
    assert!(em.peak_panel_elems <= bound);

    // The audit ring must reproduce every transition the replay observed
    // from the outside: same per-session sequence of level flips, each
    // entry's recorded credible band reclassifying to its `to` level.
    let total_observed: usize = observed.iter().map(Vec::len).sum();
    assert_eq!(engine.audit().total(), total_observed as u64);
    assert_eq!(engine.audit().evicted(), 0, "tiny replay must fit the ring");
    for (j, &id) in ids.iter().enumerate() {
        let audited: Vec<(WarningLevel, WarningLevel)> =
            engine.audit_for(id).map(|t| (t.from, t.to)).collect();
        assert_eq!(
            audited, observed[j],
            "session {j}: audit trail diverges from observed transitions"
        );
    }
    for t in engine.audit().iter() {
        assert!(t.band_lo.is_finite() && t.band_hi.is_finite());
        assert_eq!(
            cascadia_dt::stream::classify_band((t.band_lo, t.band_hi), stream_cfg.warn_threshold),
            t.to,
            "audited band must reclassify to the recorded level"
        );
        let (s, p) = t.top_scenario.expect("bank attached: posterior available");
        assert!(s < bank.len());
        assert!((0.0..=1.0).contains(&p));
    }
}

#[test]
fn telemetry_dashboard_example_flow_runs_to_completion_on_tiny_config() {
    use cascadia_dt::obs::{validate_exposition, Metric};

    // Mirrors examples/telemetry_dashboard.rs: goal-oriented forecasts +
    // mode-space identification, then every telemetry surface the engine
    // exposes must be populated and internally consistent.
    let config = TwinConfig::tiny();
    let specs = ScenarioBank::family(&config, 6, 7);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let windows: Vec<usize> = [1, 2, 4, 8, nt]
        .iter()
        .cloned()
        .filter(|&w| w <= nt)
        .collect();
    let ladder = twin.goal_ladder(&windows, &GoalOptions::rank(4));
    let pod = bank.compress_energy(0.9999, bank.len());

    let stream_cfg = StreamConfig {
        chunk: 4,
        warn_threshold: 1.0,
        infer: false,
        identify: IdentifyBackend::ModeSpace,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::goal_oriented(&twin, &ladder, stream_cfg)
        .with_bank(&bank)
        .with_pod(&pod);
    let ids: Vec<usize> = (0..bank.len()).map(|_| engine.open()).collect();
    let feeds: Vec<Vec<f64>> = (0..bank.len())
        .map(|j| bank.observations().col(j))
        .collect();
    for t in 0..nt {
        for (d, &id) in feeds.iter().zip(&ids) {
            engine.push(id, &d[t * nd..(t + 1) * nd]);
        }
        engine.tick();
    }

    // Per-stage histograms: one record per shard-visit per tick, so each
    // stage saw exactly ticks × shards records.
    let em = engine.metrics();
    let reg = engine.registry();
    let visits = (em.ticks * stream_cfg.shards) as u64;
    for stage in ["drain", "identify", "assimilate", "classify"] {
        let name = format!("stream.tick.{stage}");
        let Some(Metric::Histogram(h)) = reg.get(&name) else {
            panic!("{name} missing from the registry");
        };
        let s = h.snapshot();
        assert_eq!(s.count, visits, "{name}: one record per shard-visit");
        assert!(s.quantile(0.5) <= s.quantile(0.95));
        assert!(s.quantile(0.95) <= s.quantile(0.99));
    }
    // Every rung of the ladder assimilated at least one chunk.
    for w in 0..windows.len() {
        let name = format!("stream.rung.{w}.assimilate");
        let Some(Metric::Histogram(h)) = reg.get(&name) else {
            panic!("{name} missing from the registry");
        };
        assert!(h.snapshot().count > 0, "{name} never recorded");
    }

    // Both machine-facing views render, and the Prometheus text parses.
    let samples = validate_exposition(&reg.render_prometheus()).expect("exposition must parse");
    assert!(samples > 0);
    let json = reg.render_json();
    for stage in ["drain", "identify", "assimilate", "classify"] {
        assert!(
            json.contains(&format!("\"stream.tick.{stage}\":{{\"count\"")),
            "JSON snapshot missing stream.tick.{stage}"
        );
    }

    // The replay trips warnings: the audit ring must hold transitions
    // whose recorded evidence is self-consistent, and the transitions
    // counter must agree with it.
    assert!(!engine.audit().is_empty(), "replay produced no transitions");
    match reg.get("stream.warnings.transitions") {
        Some(Metric::Counter(c)) => assert_eq!(c.get(), engine.audit().total()),
        other => panic!("transitions counter missing: {other:?}"),
    }
    for tr in engine.audit().iter() {
        assert!(ids.contains(&tr.session));
        assert!(tr.rung < windows.len());
        assert_ne!(tr.from, tr.to);
        assert!(tr.band_lo.is_finite() && tr.band_hi.is_finite());
        assert_eq!(tr.backend, ForecastBackend::GoalOriented);
    }
}

#[test]
fn pod_superposition_example_flow_runs_to_completion_on_tiny_config() {
    // Mirrors examples/pod_superposition.rs: POD-compress the bank,
    // identify an off-bank blend event in mode space, and check the
    // posterior-weighted superposition beats the best-fit forecast.
    let config = TwinConfig::tiny();
    let specs = ScenarioBank::family(&config, 6, 13);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let forecaster = twin.windowed(&[nt]);
    let bank_fc =
        forecaster.forecast_batch(forecaster.windows.len() - 1, bank.clean_observations());

    let pod = bank.compress_energy(0.9999, bank.len());
    assert!(pod.rank() >= 1 && pod.rank() <= bank.len());
    assert!(pod.captured_energy() >= 0.9999 || pod.rank() == bank.len());

    // Off-bank event: even blend of two bank scenarios.
    let (a, b) = (1usize, 4usize);
    let ca = bank.clean_observations().col(a);
    let cb = bank.clean_observations().col(b);
    let d_event: Vec<f64> = ca.iter().zip(&cb).map(|(x, y)| 0.5 * (x + y)).collect();
    let fa = bank_fc.scenario(a);
    let fb = bank_fc.scenario(b);
    let q_truth: Vec<f64> = fa
        .q_map
        .iter()
        .zip(&fb.q_map)
        .map(|(x, y)| 0.5 * (x + y))
        .collect();

    let stream_cfg = StreamConfig {
        identify: IdentifyBackend::ModeSpace,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(&twin, &forecaster, stream_cfg)
        .with_bank(&bank)
        .with_pod(&pod);
    let id = engine.open();
    engine.push(id, &d_event);
    engine.tick();

    // The posterior must split between the two blend parents.
    let matches = engine.ranked_matches(id);
    let parents = [matches[0].scenario, matches[1].scenario];
    assert!(parents.contains(&a) && parents.contains(&b));
    assert!((matches[0].probability - 0.5).abs() < 0.05);

    // Superposition must beat best-fit against the blended truth.
    let best_fit = bank_fc.scenario(matches[0].scenario);
    let mix = engine.superposed_forecast(id, &bank_fc);
    assert!(mix.q_map.iter().all(|v| v.is_finite()));
    assert!(mix.q_std.iter().all(|v| v.is_finite() && *v >= 0.0));
    let err_best = rel_l2(&best_fit.q_map, &q_truth);
    let err_mix = rel_l2(&mix.q_map, &q_truth);
    assert!(
        err_mix < 0.1 * err_best,
        "superposition ({err_mix}) should decisively beat best-fit ({err_best})"
    );
}

#[test]
fn goal_oriented_warning_example_flow_runs_to_completion_on_tiny_config() {
    // Mirrors examples/goal_oriented_warning.rs: one event streamed
    // through the windowed backend, the exact goal ladder, and a
    // truncated goal ladder; exact must bit-match, truncated must stay
    // within its certified bound, and the final warning call must agree.
    let config = TwinConfig::tiny();
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    drop(solver);
    let twin = DigitalTwin::offline(config, event.noise_std);
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let windows = [2, nt / 2, nt];
    let forecaster = twin.windowed(&windows);
    let gl_exact = twin.goal_ladder(&windows, &GoalOptions::exact());
    let gl_trunc = twin.goal_ladder(&windows, &GoalOptions::rank(4));
    assert!(gl_trunc.resident_elems() < gl_trunc.windowed_resident_elems());

    let cfg = StreamConfig {
        infer: false,
        warn_threshold: 0.05,
        ..StreamConfig::default()
    };
    let mut windowed = StreamEngine::new(&twin, &forecaster, cfg);
    let mut exact = StreamEngine::goal_oriented(&twin, &gl_exact, cfg);
    let mut trunc = StreamEngine::goal_oriented(&twin, &gl_trunc, cfg);
    let ids = [windowed.open(), exact.open(), trunc.open()];

    let mut fed = 0;
    while fed < event.d_obs.len() {
        let hi = (fed + nd).min(event.d_obs.len());
        windowed.push(ids[0], &event.d_obs[fed..hi]);
        exact.push(ids[1], &event.d_obs[fed..hi]);
        trunc.push(ids[2], &event.d_obs[fed..hi]);
        fed = hi;
        windowed.tick();
        exact.tick();
        trunc.tick();

        let sw = windowed.session(ids[0]);
        if let (Some(w), Some(fw)) = (sw.window(), sw.forecast.as_ref()) {
            let fe = exact.session(ids[1]).forecast.as_ref().unwrap();
            assert_eq!(fw.q_map, fe.q_map, "exact ladder must bit-match");
            assert_eq!(sw.level, exact.session(ids[1]).level);

            let ft = trunc.session(ids[2]).forecast.as_ref().unwrap();
            assert!(ft.q_map.iter().all(|v| v.is_finite()));
            let err: f64 = ft
                .q_map
                .iter()
                .zip(&fw.q_map)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            let k = gl_trunc.windows[w] * nd;
            let d_norm = event.d_obs[..k].iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!(
                err <= gl_trunc.mean_error_bound(w, d_norm) + 1e-12,
                "rung {w}: truncation bound violated"
            );
        }
    }
    assert_eq!(windowed.session(ids[0]).level, exact.session(ids[1]).level);
    assert_eq!(windowed.session(ids[0]).level, WarningLevel::Warning);
}
