//! Smoke tests: the `examples/quickstart.rs` and
//! `examples/streaming_warning.rs` flows must run to completion on
//! `TwinConfig::tiny()` and produce finite, calibrated results.
//!
//! These mirror the examples' API sequences step for step (synthesize →
//! offline phases 1-3 → online work) so a regression in any layer the
//! examples touch fails here, in `cargo test`, without needing to spawn
//! the example binaries. CI additionally runs the quickstart binary
//! itself (`cargo run --release --example quickstart`).

use cascadia_dt::prelude::*;
use cascadia_dt::twin::metrics::{ci95_coverage, rel_l2};

#[test]
fn quickstart_example_flow_runs_to_completion_on_tiny_config() {
    let config = TwinConfig::tiny();

    // Synthesize the "truth" exactly as the example does (same seed).
    let solver = config.build_solver();
    let rupture = SyntheticEvent::default_rupture(&config);
    let event = SyntheticEvent::generate(&config, &solver, &rupture, 42);
    assert!(!event.d_obs.is_empty(), "synthetic event produced no data");
    assert!(
        event.noise_std > 0.0 && event.noise_std.is_finite(),
        "noise std must be positive and finite, got {}",
        event.noise_std
    );
    drop(solver);

    // Offline phases 1-3, then the real-time online phase.
    let twin = DigitalTwin::offline(config, event.noise_std);
    let inference = twin.infer(&event.d_obs);
    let forecast = twin.forecast(&event.d_obs);

    // Shape invariants the example's output loop relies on.
    assert_eq!(inference.m_map.len(), twin.n_params());
    assert_eq!(forecast.q_map.len(), forecast.q_std.len());
    assert_eq!(forecast.q_map.len(), event.q_true.len());
    let nq = twin.solver.qoi.len();
    let nt = twin.solver.grid.nt_obs;
    assert_eq!(forecast.q_map.len(), nq * nt);

    // Every number the example prints must be finite and sane.
    assert!(inference.m_map.iter().all(|v| v.is_finite()));
    assert!(forecast.q_map.iter().all(|v| v.is_finite()));
    assert!(
        forecast.q_std.iter().all(|v| v.is_finite() && *v >= 0.0),
        "forecast std devs must be finite and nonnegative"
    );
    for idx in 0..forecast.q_map.len() {
        let (lo, hi) = forecast.ci95(idx);
        assert!(lo <= hi, "inverted CI at index {idx}: [{lo}, {hi}]");
    }

    // Forecast quality on the tiny config: the inversion is exact in the
    // noise-free limit, so with 1% noise the wave-height field must be
    // recovered well and the 95% interval must cover a healthy fraction of
    // the truth. Thresholds are loose on purpose — this is a smoke test,
    // not an accuracy benchmark.
    let err = rel_l2(&forecast.q_map, &event.q_true);
    assert!(
        err.is_finite() && err < 0.5,
        "quickstart forecast error unexpectedly large: rel L2 = {err}"
    );
    let coverage = ci95_coverage(&forecast.q_map, &forecast.q_std, &event.q_true);
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be a fraction, got {coverage}"
    );
}

#[test]
fn streaming_warning_example_flow_runs_to_completion_on_tiny_config() {
    streaming_warning_flow(TwinConfig::tiny());
}

/// The demo-scale variant of the streaming flow (`TwinConfig::demo()`),
/// behind the same env flag the example reads: the offline build takes
/// minutes on one core, so it only runs when `STREAMING_DEMO=1` is set
/// (CI and default `cargo test` skip it).
#[test]
fn streaming_warning_example_flow_demo_scale_behind_env_flag() {
    if std::env::var("STREAMING_DEMO").map(|v| v == "1") != Ok(true) {
        eprintln!("skipping demo-scale streaming smoke (set STREAMING_DEMO=1 to run)");
        return;
    }
    streaming_warning_flow(TwinConfig::demo());
}

fn streaming_warning_flow(config: TwinConfig) {
    // Bank + twin + window ladder, exactly as the example builds them
    // (same family seed; a smaller bank keeps the smoke test quick).
    let n_sessions = 4;
    let specs = ScenarioBank::family(&config, n_sessions, 7);
    let solver = config.build_solver();
    let bank = ScenarioBank::generate(&config, &solver, &specs);
    drop(solver);
    let twin = DigitalTwin::offline(config, bank.noise_std());
    let nt = twin.solver.grid.nt_obs;
    let nd = twin.solver.sensors.len();
    let ladder: Vec<usize> = [1, 2, 4, 8, nt]
        .iter()
        .cloned()
        .filter(|&w| w <= nt)
        .collect();
    let forecaster = twin.windowed(&ladder);

    let stream_cfg = StreamConfig {
        chunk: 4,
        warn_threshold: 1.0,
        infer: true,
        ..StreamConfig::default()
    };
    let mut engine = StreamEngine::new(&twin, &forecaster, stream_cfg).with_bank(&bank);
    let ids: Vec<usize> = (0..bank.len()).map(|_| engine.open()).collect();

    // Interleaved replay: one observation step per session per round.
    let feeds: Vec<Vec<f64>> = (0..bank.len())
        .map(|j| bank.observations().col(j))
        .collect();
    for t in 0..nt {
        for (d, &id) in feeds.iter().zip(&ids) {
            let accepted = engine.push(id, &d[t * nd..(t + 1) * nd]);
            assert_eq!(accepted, nd);
        }
        let tm = engine.tick();
        assert!(tm.seconds >= 0.0 && tm.seconds.is_finite());
    }

    // Every session must have completed the ladder with a finite forecast
    // and a sane identification ranking.
    for (j, &id) in ids.iter().enumerate() {
        let s = engine.session(id);
        assert!(s.is_complete(), "session {j} did not finish the horizon");
        assert_eq!(s.window(), Some(forecaster.windows.len() - 1));
        let fc = s.forecast.as_ref().expect("session never assimilated");
        assert!(fc.q_map.iter().all(|v| v.is_finite()));
        assert!(fc.q_std.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(s.m_norm.expect("inference enabled").is_finite());
        let ranked = engine.ranked_matches(id);
        assert_eq!(ranked.len(), bank.len());
        let z: f64 = ranked.iter().map(|m| m.probability).sum();
        assert!((z - 1.0).abs() < 1e-9, "probabilities must normalize");
    }

    // The replayed streams are the bank's own scenarios: identification
    // must lock onto the right one for most sessions (loose on purpose —
    // smoke, not an accuracy benchmark).
    let correct = ids
        .iter()
        .enumerate()
        .filter(|(j, &id)| engine.ranked_matches(id)[0].scenario == *j)
        .count();
    assert!(
        correct * 2 >= bank.len(),
        "identification collapsed: {correct}/{}",
        bank.len()
    );

    // Engine accounting: every session crossed every rung once, in
    // bounded panels.
    let em = engine.metrics();
    assert_eq!(em.ticks, nt);
    assert_eq!(em.assimilations, bank.len() * forecaster.windows.len());
    assert_eq!(em.samples_ingested, bank.len() * twin.n_data());
    let bound = twin.n_data().max(twin.n_params()) * stream_cfg.chunk;
    assert!(em.peak_panel_elems <= bound);
}
